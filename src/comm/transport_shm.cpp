// Shared-memory transport backend: process-per-rank on one host.
//
// The launcher maps one anonymous MAP_SHARED arena *before* forking the
// worker processes, so every rank inherits the same physical pages.  The
// arena holds one fixed-capacity SPSC byte ring per directed (src, dst)
// pair — src's processes produce, dst's consume — plus a sense-reversing
// barrier.  Messages are wire.hpp frames streamed through the ring; a
// message larger than the ring simply flows through it in chunks (the
// producer blocks on ring-full, the consumer on ring-empty, both on futex
// doorbells, FUTEX_WAIT/WAKE on the shared 32-bit ring cursors).
//
// Ring cursors are free-running uint32 byte counts (capacity divides 2^32
// because it is a power of two, so `tail - head` stays exact across
// wraparound).  send() never blocks on the consumer: frames are queued
// locally and pumped into the ring by a dedicated exec worker
// (detail::FrameSender), preserving the unbounded-send contract the
// collectives' neighbour exchanges rely on.
//
// Failure detection (timeout armed — see comm/fault.hpp): every futex wait
// becomes a timed wait in heartbeat-interval slices.  A blocked reader
// pings all peers each slice and resets its deadline on any ring progress
// (heartbeat frames included); on expiry it forwards a failure notice and
// throws RankFailure.  The barrier stamps each rank's arrival generation
// in the arena, so every timed-out waiter independently names the same
// lowest non-arrived rank — no notice traffic needed.
#include <sys/mman.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <linux/futex.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "comm/transport.hpp"
#include "comm/transport_detail.hpp"
#include "comm/wire.hpp"

namespace spdkfac::comm {

namespace {

void futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expected) {
  // Spurious returns (EINTR, EAGAIN on a stale expected value) are fine:
  // every caller re-checks its condition in a loop.
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAIT,
          expected, nullptr, nullptr, 0);
}

/// Timed FUTEX_WAIT (relative timeout); same spurious-return contract.
void futex_wait_for(std::atomic<std::uint32_t>* addr, std::uint32_t expected,
                    double timeout_s) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_s);
  ts.tv_nsec = static_cast<long>((timeout_s - static_cast<double>(ts.tv_sec)) *
                                 1e9);
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAIT,
          expected, &ts, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAKE,
          INT_MAX, nullptr, nullptr, 0);
}

/// SPSC ring cursors, one cache line each so producer and consumer never
/// false-share.  head = bytes consumed, tail = bytes produced; both wrap
/// freely (capacity divides 2^32).
struct RingState {
  alignas(64) std::atomic<std::uint32_t> head;
  alignas(64) std::atomic<std::uint32_t> tail;
};

struct BarrierState {
  std::atomic<std::uint32_t> arrived;
  std::atomic<std::uint32_t> generation;
};

struct alignas(64) ArenaControl {
  int size;
  std::uint32_t ring_bytes;
  BarrierState barrier;
};

constexpr std::size_t kRingStateBytes = sizeof(RingState);
/// One cache line per rank for the barrier arrival stamp (no false sharing
/// between arriving ranks).
constexpr std::size_t kStampBytes = 64;

std::size_t slot_bytes(std::size_t ring_bytes) {
  return kRingStateBytes + ring_bytes;
}

/// Deadline policy for a blocking ring operation.  `timeout_s <= 0` waits
/// forever (the pre-fault-tolerance behavior); otherwise the wait runs in
/// `slice_s` futex slices, invoking `on_stall` (may be null) each slice,
/// and gives up `timeout_s` after the last observed progress.
struct RingDeadline {
  double timeout_s = 0.0;
  double slice_s = 0.0;
  const std::function<void()>* on_stall = nullptr;
};

}  // namespace

/// The mmap'd arena (see file comment).  Created once by the launcher;
/// worker processes inherit the mapping across fork and address it through
/// their own copy of this handle.
class ShmArena {
 public:
  ShmArena(int size, std::size_t ring_bytes)
      : size_(size), ring_bytes_(ring_bytes) {
    total_ = sizeof(ArenaControl) +
             static_cast<std::size_t>(size) * kStampBytes +
             static_cast<std::size_t>(size) * size * slot_bytes(ring_bytes);
    void* mem = ::mmap(nullptr, total_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      throw std::runtime_error("ShmArena: mmap failed");
    }
    base_ = static_cast<unsigned char*>(mem);
    auto* control = new (base_) ArenaControl;
    control->size = size;
    control->ring_bytes = static_cast<std::uint32_t>(ring_bytes);
    control->barrier.arrived.store(0, std::memory_order_relaxed);
    control->barrier.generation.store(0, std::memory_order_relaxed);
    for (int r = 0; r < size; ++r) {
      auto* stamp = new (stamp_slot(r)) std::atomic<std::uint32_t>;
      stamp->store(0, std::memory_order_relaxed);
    }
    for (int src = 0; src < size; ++src) {
      for (int dst = 0; dst < size; ++dst) {
        auto* ring = new (slot(src, dst)) RingState;
        ring->head.store(0, std::memory_order_relaxed);
        ring->tail.store(0, std::memory_order_relaxed);
      }
    }
  }

  ~ShmArena() { ::munmap(base_, total_); }

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  int size() const noexcept { return size_; }
  std::uint32_t ring_bytes() const noexcept {
    return static_cast<std::uint32_t>(ring_bytes_);
  }

  RingState& ring(int src, int dst) {
    return *reinterpret_cast<RingState*>(slot(src, dst));
  }
  unsigned char* ring_data(int src, int dst) {
    return slot(src, dst) + kRingStateBytes;
  }
  BarrierState& barrier() {
    return reinterpret_cast<ArenaControl*>(base_)->barrier;
  }
  /// Per-rank barrier arrival stamp: generation + 1, stored on entry.
  std::atomic<std::uint32_t>& barrier_stamp(int rank) {
    return *reinterpret_cast<std::atomic<std::uint32_t>*>(stamp_slot(rank));
  }

 private:
  unsigned char* stamp_slot(int rank) {
    return base_ + sizeof(ArenaControl) +
           static_cast<std::size_t>(rank) * kStampBytes;
  }

  unsigned char* slot(int src, int dst) {
    return base_ + sizeof(ArenaControl) +
           static_cast<std::size_t>(size_) * kStampBytes +
           (static_cast<std::size_t>(src) * size_ + dst) *
               slot_bytes(ring_bytes_);
  }

  int size_;
  std::size_t ring_bytes_;
  std::size_t total_ = 0;
  unsigned char* base_ = nullptr;
};

namespace {

/// Streams `n` bytes into the (src -> dst) ring, blocking on ring-full.
/// Returns false when the deadline expires with the consumer not draining.
bool ring_write(RingState& st, unsigned char* data, std::uint32_t cap,
                const unsigned char* src, std::size_t n,
                const RingDeadline& dl) {
  const bool timed = dl.timeout_s > 0.0;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(dl.timeout_s);
  std::size_t done = 0;
  while (done < n) {
    const std::uint32_t tail = st.tail.load(std::memory_order_relaxed);
    const std::uint32_t head = st.head.load(std::memory_order_acquire);
    const std::uint32_t free_bytes = cap - (tail - head);
    if (free_bytes == 0) {
      if (!timed) {
        futex_wait(&st.head, head);
        continue;
      }
      futex_wait_for(&st.head, head, dl.slice_s);
      if (st.head.load(std::memory_order_acquire) != head) continue;
      if (dl.on_stall && *dl.on_stall) (*dl.on_stall)();
      if (std::chrono::steady_clock::now() >= deadline) return false;
      continue;
    }
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        std::min<std::size_t>(n - done, free_bytes));
    const std::uint32_t pos = tail & (cap - 1);
    const std::uint32_t first = std::min(chunk, cap - pos);
    std::memcpy(data + pos, src + done, first);
    std::memcpy(data, src + done + first, chunk - first);
    st.tail.store(tail + chunk, std::memory_order_release);
    futex_wake_all(&st.tail);
    done += chunk;
    if (timed) {
      // Progress resets the deadline: a large frame chunking through a
      // small ring is flow, not failure.
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(dl.timeout_s);
    }
  }
  return true;
}

/// Streams `n` bytes out of the ring into dst, blocking on ring-empty.
/// Returns false when the deadline expires with the producer silent.
bool ring_read(RingState& st, const unsigned char* data, std::uint32_t cap,
               unsigned char* dst, std::size_t n, const RingDeadline& dl) {
  const bool timed = dl.timeout_s > 0.0;
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(dl.timeout_s);
  std::size_t done = 0;
  while (done < n) {
    const std::uint32_t head = st.head.load(std::memory_order_relaxed);
    const std::uint32_t tail = st.tail.load(std::memory_order_acquire);
    const std::uint32_t avail = tail - head;
    if (avail == 0) {
      if (!timed) {
        futex_wait(&st.tail, tail);
        continue;
      }
      futex_wait_for(&st.tail, tail, dl.slice_s);
      if (st.tail.load(std::memory_order_acquire) != tail) continue;
      if (dl.on_stall && *dl.on_stall) (*dl.on_stall)();
      if (std::chrono::steady_clock::now() >= deadline) return false;
      continue;
    }
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(std::min<std::size_t>(n - done, avail));
    const std::uint32_t pos = head & (cap - 1);
    const std::uint32_t first = std::min(chunk, cap - pos);
    std::memcpy(dst + done, data + pos, first);
    std::memcpy(dst + done + first, data, chunk - first);
    st.head.store(head + chunk, std::memory_order_release);
    futex_wake_all(&st.head);
    done += chunk;
    if (timed) {
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(dl.timeout_s);
    }
  }
  return true;
}

class ShmTransport final : public Transport {
 public:
  ShmTransport(std::shared_ptr<ShmArena> arena, int rank)
      : arena_(std::move(arena)),
        rank_(rank),
        stall_ping_([this] { heartbeat(); }),
        sender_(arena_->size(),
                [this](int dst, std::span<const unsigned char> bytes) {
                  // No stall ping here: this runs on the pump worker, which
                  // is the thread heartbeats would need to drain through.
                  const RingDeadline dl{timeout_s(), heartbeat_interval_s(),
                                        nullptr};
                  if (!ring_write(arena_->ring(rank_, dst),
                                  arena_->ring_data(rank_, dst),
                                  arena_->ring_bytes(), bytes.data(),
                                  bytes.size(), dl)) {
                    throw RankFailure(dst, "send", FailureCause::kTimeout,
                                      rank_, timeout_s());
                  }
                }) {}

  TransportKind kind() const noexcept override {
    return TransportKind::kSharedMemory;
  }
  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return arena_->size(); }

  void send(int dst, std::span<const double> payload, std::uint16_t tag,
            int plan_task, std::uint16_t codec) override {
    wire::FrameHeader header;
    header.tag = tag;
    header.src = rank_;
    header.plan_task = plan_task;
    header.elements = payload.size();
    header.codec = codec;
    sender_.send(dst, wire::encode_frame(header, payload));
  }

  std::vector<double> recv(int src) override {
    const wire::FrameHeader header = read_header(src);
    std::vector<double> payload(static_cast<std::size_t>(header.elements));
    read_payload(src, payload);
    return payload;
  }

  bool recv_into(int src, std::span<double> out) override {
    const wire::FrameHeader header = read_header(src);
    if (header.elements != out.size()) {
      // Consume and discard the mismatched message, like Channel::recv_into.
      std::vector<double> scratch(static_cast<std::size_t>(header.elements));
      read_payload(src, scratch);
      return false;
    }
    read_payload(src, out);
    return true;
  }

  void barrier() override {
    BarrierState& b = arena_->barrier();
    const auto parties = static_cast<std::uint32_t>(arena_->size());
    const std::uint32_t gen = b.generation.load(std::memory_order_acquire);
    arena_->barrier_stamp(rank_).store(gen + 1, std::memory_order_release);
    if (b.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == parties) {
      b.arrived.store(0, std::memory_order_relaxed);
      b.generation.store(gen + 1, std::memory_order_release);
      futex_wake_all(&b.generation);
      return;
    }
    const double timeout = timeout_s();
    if (timeout <= 0.0) {
      while (b.generation.load(std::memory_order_acquire) == gen) {
        futex_wait(&b.generation, gen);
      }
      return;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeout);
    while (b.generation.load(std::memory_order_acquire) == gen) {
      futex_wait_for(&b.generation, gen, heartbeat_interval_s());
      if (b.generation.load(std::memory_order_acquire) != gen) break;
      if (std::chrono::steady_clock::now() < deadline) continue;
      // Every timed-out waiter reads the same stamps, so all survivors
      // name the same (lowest) missing rank, with no notice traffic.
      for (int r = 0; r < arena_->size(); ++r) {
        if (arena_->barrier_stamp(r).load(std::memory_order_acquire) !=
            gen + 1) {
          throw RankFailure(r, "barrier", FailureCause::kTimeout, rank_,
                            timeout);
        }
      }
      // All stamped but the generation not yet advanced: the last arriver
      // is mid-publish — keep waiting, completion is imminent.
    }
  }

  void heartbeat() override {
    if (timeout_s() <= 0.0) return;
    const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    const auto interval_ns =
        static_cast<std::int64_t>(heartbeat_interval_s() * 1e9);
    std::int64_t last = last_heartbeat_ns_.load(std::memory_order_relaxed);
    if (now_ns - last < interval_ns ||
        !last_heartbeat_ns_.compare_exchange_strong(
            last, now_ns, std::memory_order_relaxed)) {
      return;
    }
    note_heartbeat_round();
    wire::FrameHeader ping;
    ping.tag = wire::kHeartbeatTag;
    ping.src = rank_;
    const auto frame = wire::encode_frame(ping, {});
    for (int peer = 0; peer < arena_->size(); ++peer) {
      if (peer == rank_) continue;
      try {
        sender_.send(peer, frame);
      } catch (...) {
        // Liveness pings are best-effort; a poisoned peer queue must not
        // break the detection path that is trying to report it.
      }
    }
  }

 private:
  RingDeadline deadline() const noexcept {
    return RingDeadline{timeout_s(), heartbeat_interval_s(), &stall_ping_};
  }

  /// Next data-bearing frame header from `src`: filters heartbeat frames,
  /// turns failure notices into (forwarded) RankFailures.
  wire::FrameHeader read_header(int src) {
    for (;;) {
      unsigned char raw[wire::kHeaderBytes];
      if (!ring_read(arena_->ring(src, rank_), arena_->ring_data(src, rank_),
                     arena_->ring_bytes(), raw, wire::kHeaderBytes,
                     deadline())) {
        notify_failure(src);
        throw RankFailure(src, "recv", FailureCause::kTimeout, rank_,
                          timeout_s());
      }
      wire::FrameHeader header;
      const wire::DecodeStatus status = wire::decode_header(raw, header);
      if (status != wire::DecodeStatus::kOk) {
        throw std::runtime_error(
            std::string("shm transport: corrupt frame (") +
            wire::to_string(status) + ")");
      }
      if (header.src != src) {
        throw std::runtime_error("shm transport: frame src mismatch");
      }
      if (header.tag == wire::kHeartbeatTag) continue;
      if (header.tag == wire::kFailureTag) {
        std::vector<double> who(static_cast<std::size_t>(header.elements));
        read_payload(src, who);
        const int dead = who.empty() ? -1 : static_cast<int>(who.front());
        notify_failure(dead);  // gossip: peers blocked on *us* learn it too
        throw RankFailure(dead, "recv", FailureCause::kPeerNotice, rank_,
                          timeout_s());
      }
      return header;
    }
  }

  void read_payload(int src, std::span<double> out) {
    if (out.empty()) return;
    if (!ring_read(arena_->ring(src, rank_), arena_->ring_data(src, rank_),
                   arena_->ring_bytes(),
                   reinterpret_cast<unsigned char*>(out.data()),
                   out.size_bytes(), deadline())) {
      notify_failure(src);
      throw RankFailure(src, "recv", FailureCause::kTimeout, rank_,
                        timeout_s());
    }
  }

  void notify_failure(int dead) {
    wire::FrameHeader header;
    header.tag = wire::kFailureTag;
    header.src = rank_;
    header.elements = 1;
    const double who[] = {static_cast<double>(dead)};
    const auto frame = wire::encode_frame(header, who);
    for (int peer = 0; peer < arena_->size(); ++peer) {
      if (peer == rank_ || peer == dead) continue;
      try {
        sender_.send(peer, frame);
      } catch (...) {
        // Best-effort: the local RankFailure is thrown regardless.
      }
    }
  }

  std::shared_ptr<ShmArena> arena_;
  int rank_;
  std::atomic<std::int64_t> last_heartbeat_ns_{0};
  std::function<void()> stall_ping_;
  detail::FrameSender sender_;  ///< last member: flushes before arena_ dies
};

}  // namespace

std::shared_ptr<ShmArena> make_shm_arena(int size, std::size_t ring_bytes) {
  if (size <= 0) {
    throw std::invalid_argument("shm arena: size must be positive");
  }
  if (ring_bytes < 1024 || (ring_bytes & (ring_bytes - 1)) != 0 ||
      ring_bytes > (std::size_t{1} << 31)) {
    throw std::invalid_argument(
        "shm arena: ring_bytes must be a power of two in [1024, 2^31]");
  }
  return std::make_shared<ShmArena>(size, ring_bytes);
}

std::unique_ptr<Transport> make_shm_transport(std::shared_ptr<ShmArena> arena,
                                              int rank) {
  if (rank < 0 || rank >= arena->size()) {
    throw std::invalid_argument("shm transport: bad rank");
  }
  return std::make_unique<ShmTransport>(std::move(arena), rank);
}

}  // namespace spdkfac::comm
