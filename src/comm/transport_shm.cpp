// Shared-memory transport backend: process-per-rank on one host.
//
// The launcher maps one anonymous MAP_SHARED arena *before* forking the
// worker processes, so every rank inherits the same physical pages.  The
// arena holds one fixed-capacity SPSC byte ring per directed (src, dst)
// pair — src's processes produce, dst's consume — plus a sense-reversing
// barrier.  Messages are wire.hpp frames streamed through the ring; a
// message larger than the ring simply flows through it in chunks (the
// producer blocks on ring-full, the consumer on ring-empty, both on futex
// doorbells, FUTEX_WAIT/WAKE on the shared 32-bit ring cursors).
//
// Ring cursors are free-running uint32 byte counts (capacity divides 2^32
// because it is a power of two, so `tail - head` stays exact across
// wraparound).  send() never blocks on the consumer: frames are queued
// locally and pumped into the ring by a dedicated exec worker
// (detail::FrameSender), preserving the unbounded-send contract the
// collectives' neighbour exchanges rely on.
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <linux/futex.h>

#include <algorithm>
#include <atomic>
#include <climits>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/transport.hpp"
#include "comm/transport_detail.hpp"
#include "comm/wire.hpp"

namespace spdkfac::comm {

namespace {

void futex_wait(std::atomic<std::uint32_t>* addr, std::uint32_t expected) {
  // Spurious returns (EINTR, EAGAIN on a stale expected value) are fine:
  // every caller re-checks its condition in a loop.
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAIT,
          expected, nullptr, nullptr, 0);
}

void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), FUTEX_WAKE,
          INT_MAX, nullptr, nullptr, 0);
}

/// SPSC ring cursors, one cache line each so producer and consumer never
/// false-share.  head = bytes consumed, tail = bytes produced; both wrap
/// freely (capacity divides 2^32).
struct RingState {
  alignas(64) std::atomic<std::uint32_t> head;
  alignas(64) std::atomic<std::uint32_t> tail;
};

struct BarrierState {
  std::atomic<std::uint32_t> arrived;
  std::atomic<std::uint32_t> generation;
};

struct alignas(64) ArenaControl {
  int size;
  std::uint32_t ring_bytes;
  BarrierState barrier;
};

constexpr std::size_t kRingStateBytes = sizeof(RingState);

std::size_t slot_bytes(std::size_t ring_bytes) {
  return kRingStateBytes + ring_bytes;
}

}  // namespace

/// The mmap'd arena (see file comment).  Created once by the launcher;
/// worker processes inherit the mapping across fork and address it through
/// their own copy of this handle.
class ShmArena {
 public:
  ShmArena(int size, std::size_t ring_bytes)
      : size_(size), ring_bytes_(ring_bytes) {
    total_ = sizeof(ArenaControl) +
             static_cast<std::size_t>(size) * size * slot_bytes(ring_bytes);
    void* mem = ::mmap(nullptr, total_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      throw std::runtime_error("ShmArena: mmap failed");
    }
    base_ = static_cast<unsigned char*>(mem);
    auto* control = new (base_) ArenaControl;
    control->size = size;
    control->ring_bytes = static_cast<std::uint32_t>(ring_bytes);
    control->barrier.arrived.store(0, std::memory_order_relaxed);
    control->barrier.generation.store(0, std::memory_order_relaxed);
    for (int src = 0; src < size; ++src) {
      for (int dst = 0; dst < size; ++dst) {
        auto* ring = new (slot(src, dst)) RingState;
        ring->head.store(0, std::memory_order_relaxed);
        ring->tail.store(0, std::memory_order_relaxed);
      }
    }
  }

  ~ShmArena() { ::munmap(base_, total_); }

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  int size() const noexcept { return size_; }
  std::uint32_t ring_bytes() const noexcept {
    return static_cast<std::uint32_t>(ring_bytes_);
  }

  RingState& ring(int src, int dst) {
    return *reinterpret_cast<RingState*>(slot(src, dst));
  }
  unsigned char* ring_data(int src, int dst) {
    return slot(src, dst) + kRingStateBytes;
  }
  BarrierState& barrier() {
    return reinterpret_cast<ArenaControl*>(base_)->barrier;
  }

 private:
  unsigned char* slot(int src, int dst) {
    return base_ + sizeof(ArenaControl) +
           (static_cast<std::size_t>(src) * size_ + dst) *
               slot_bytes(ring_bytes_);
  }

  int size_;
  std::size_t ring_bytes_;
  std::size_t total_ = 0;
  unsigned char* base_ = nullptr;
};

namespace {

/// Streams `n` bytes into the (src -> dst) ring, blocking on ring-full.
void ring_write(RingState& st, unsigned char* data, std::uint32_t cap,
                const unsigned char* src, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const std::uint32_t tail = st.tail.load(std::memory_order_relaxed);
    const std::uint32_t head = st.head.load(std::memory_order_acquire);
    const std::uint32_t free_bytes = cap - (tail - head);
    if (free_bytes == 0) {
      futex_wait(&st.head, head);
      continue;
    }
    const std::uint32_t chunk = static_cast<std::uint32_t>(
        std::min<std::size_t>(n - done, free_bytes));
    const std::uint32_t pos = tail & (cap - 1);
    const std::uint32_t first = std::min(chunk, cap - pos);
    std::memcpy(data + pos, src + done, first);
    std::memcpy(data, src + done + first, chunk - first);
    st.tail.store(tail + chunk, std::memory_order_release);
    futex_wake_all(&st.tail);
    done += chunk;
  }
}

/// Streams `n` bytes out of the ring into dst, blocking on ring-empty.
void ring_read(RingState& st, const unsigned char* data, std::uint32_t cap,
               unsigned char* dst, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const std::uint32_t head = st.head.load(std::memory_order_relaxed);
    const std::uint32_t tail = st.tail.load(std::memory_order_acquire);
    const std::uint32_t avail = tail - head;
    if (avail == 0) {
      futex_wait(&st.tail, tail);
      continue;
    }
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(std::min<std::size_t>(n - done, avail));
    const std::uint32_t pos = head & (cap - 1);
    const std::uint32_t first = std::min(chunk, cap - pos);
    std::memcpy(dst + done, data + pos, first);
    std::memcpy(dst + done + first, data, chunk - first);
    st.head.store(head + chunk, std::memory_order_release);
    futex_wake_all(&st.head);
    done += chunk;
  }
}

class ShmTransport final : public Transport {
 public:
  ShmTransport(std::shared_ptr<ShmArena> arena, int rank)
      : arena_(std::move(arena)),
        rank_(rank),
        sender_(arena_->size(),
                [this](int dst, std::span<const unsigned char> bytes) {
                  ring_write(arena_->ring(rank_, dst),
                             arena_->ring_data(rank_, dst),
                             arena_->ring_bytes(), bytes.data(),
                             bytes.size());
                }) {}

  TransportKind kind() const noexcept override {
    return TransportKind::kSharedMemory;
  }
  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return arena_->size(); }

  void send(int dst, std::span<const double> payload, std::uint16_t tag,
            int plan_task) override {
    wire::FrameHeader header;
    header.tag = tag;
    header.src = rank_;
    header.plan_task = plan_task;
    header.elements = payload.size();
    sender_.send(dst, wire::encode_frame(header, payload));
  }

  std::vector<double> recv(int src) override {
    const wire::FrameHeader header = read_header(src);
    std::vector<double> payload(static_cast<std::size_t>(header.elements));
    read_payload(src, payload);
    return payload;
  }

  bool recv_into(int src, std::span<double> out) override {
    const wire::FrameHeader header = read_header(src);
    if (header.elements != out.size()) {
      // Consume and discard the mismatched message, like Channel::recv_into.
      std::vector<double> scratch(static_cast<std::size_t>(header.elements));
      read_payload(src, scratch);
      return false;
    }
    read_payload(src, out);
    return true;
  }

  void barrier() override {
    BarrierState& b = arena_->barrier();
    const auto parties = static_cast<std::uint32_t>(arena_->size());
    const std::uint32_t gen = b.generation.load(std::memory_order_acquire);
    if (b.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == parties) {
      b.arrived.store(0, std::memory_order_relaxed);
      b.generation.store(gen + 1, std::memory_order_release);
      futex_wake_all(&b.generation);
    } else {
      while (b.generation.load(std::memory_order_acquire) == gen) {
        futex_wait(&b.generation, gen);
      }
    }
  }

 private:
  wire::FrameHeader read_header(int src) {
    unsigned char raw[wire::kHeaderBytes];
    ring_read(arena_->ring(src, rank_), arena_->ring_data(src, rank_),
              arena_->ring_bytes(), raw, wire::kHeaderBytes);
    wire::FrameHeader header;
    const wire::DecodeStatus status = wire::decode_header(raw, header);
    if (status != wire::DecodeStatus::kOk) {
      throw std::runtime_error(std::string("shm transport: corrupt frame (") +
                               wire::to_string(status) + ")");
    }
    if (header.src != src) {
      throw std::runtime_error("shm transport: frame src mismatch");
    }
    return header;
  }

  void read_payload(int src, std::span<double> out) {
    if (out.empty()) return;
    ring_read(arena_->ring(src, rank_), arena_->ring_data(src, rank_),
              arena_->ring_bytes(),
              reinterpret_cast<unsigned char*>(out.data()), out.size_bytes());
  }

  std::shared_ptr<ShmArena> arena_;
  int rank_;
  detail::FrameSender sender_;  ///< last member: flushes before arena_ dies
};

}  // namespace

std::shared_ptr<ShmArena> make_shm_arena(int size, std::size_t ring_bytes) {
  if (size <= 0) {
    throw std::invalid_argument("shm arena: size must be positive");
  }
  if (ring_bytes < 1024 || (ring_bytes & (ring_bytes - 1)) != 0 ||
      ring_bytes > (std::size_t{1} << 31)) {
    throw std::invalid_argument(
        "shm arena: ring_bytes must be a power of two in [1024, 2^31]");
  }
  return std::make_shared<ShmArena>(size, ring_bytes);
}

std::unique_ptr<Transport> make_shm_transport(std::shared_ptr<ShmArena> arena,
                                              int rank) {
  if (rank < 0 || rank >= arena->size()) {
    throw std::invalid_argument("shm transport: bad rank");
  }
  return std::make_unique<ShmTransport>(std::move(arena), rank);
}

}  // namespace spdkfac::comm
