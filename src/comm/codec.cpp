#include "comm/codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/wire.hpp"
#include "tensor/kernels/kernels.hpp"

namespace spdkfac::comm {

namespace {

using tensor::kernels::active_table;

std::size_t div_up(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

std::size_t topk_count(std::size_t n, double ratio) {
  if (n == 0) return 0;
  const auto k = static_cast<std::size_t>(ratio * static_cast<double>(n));
  return std::min(n, std::max<std::size_t>(1, k));
}

// Modeled encode+decode seconds per element (both endpoints of a hop).
// Calibration constants in the spirit of perf::ComputeModel: codec kernels
// are elementwise/streaming, so on the modeled accelerator fabric they run
// at memory bandwidth — orders below the per-element wire cost on the
// bandwidth-bound configurations where compression pays, but nonzero, so a
// latency-bound message never prefers a codec on compute-cost grounds.
constexpr double kFp16CostPerElement = 2.0e-11;
constexpr double kInt8CostPerElement = 3.0e-11;
constexpr double kTopKCostPerElement = 5.0e-11;

}  // namespace

const char* to_string(Codec codec) noexcept {
  switch (codec) {
    case Codec::kNone:
      return "none";
    case Codec::kFp16:
      return "fp16";
    case Codec::kInt8:
      return "int8";
    case Codec::kTopK:
      return "topk";
    case Codec::kAuto:
      return "auto";
  }
  return "?";
}

Codec codec_from_string(const std::string& name) {
  if (name == "none") return Codec::kNone;
  if (name == "fp16") return Codec::kFp16;
  if (name == "int8") return Codec::kInt8;
  if (name == "topk") return Codec::kTopK;
  if (name == "auto") return Codec::kAuto;
  throw std::invalid_argument("unknown codec: \"" + name +
                              "\" (expected none|fp16|int8|topk|auto)");
}

Codec resolve_codec(Codec option, std::size_t elements,
                    bool gradient) noexcept {
  if (option != Codec::kAuto) return option;
  if (elements < kAutoCodecCrossoverElements) return Codec::kNone;
  return gradient ? Codec::kFp16 : Codec::kInt8;
}

std::size_t wire_elements(Codec codec, std::size_t n,
                          double topk_ratio) noexcept {
  switch (codec) {
    case Codec::kFp16:
      return div_up(n, 4);  // 4 halves per double
    case Codec::kInt8:
      // one scale double per chunk + 8 quantized bytes per double
      return div_up(n, kInt8ChunkElements) + div_up(n, 8);
    case Codec::kTopK:
      return topk_count(n, topk_ratio);
    case Codec::kNone:
    case Codec::kAuto:
      break;
  }
  return n;
}

double wire_ratio(Codec codec, double topk_ratio) noexcept {
  switch (codec) {
    case Codec::kFp16:
      return 0.25;
    case Codec::kInt8:
      return 1.0 / 8.0 + 1.0 / static_cast<double>(kInt8ChunkElements);
    case Codec::kTopK:
      return topk_ratio;
    case Codec::kNone:
    case Codec::kAuto:
      break;
  }
  return 1.0;
}

double codec_cost_per_element(Codec codec) noexcept {
  switch (codec) {
    case Codec::kFp16:
      return kFp16CostPerElement;
    case Codec::kInt8:
      return kInt8CostPerElement;
    case Codec::kTopK:
      return kTopKCostPerElement;
    case Codec::kNone:
    case Codec::kAuto:
      break;
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

double pack_topk_slot(TopKSlot slot) noexcept {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(slot.index) << 32) |
      std::bit_cast<std::uint32_t>(slot.value);
  return std::bit_cast<double>(bits);
}

TopKSlot unpack_topk_slot(double packed) noexcept {
  const auto bits = std::bit_cast<std::uint64_t>(packed);
  return TopKSlot{static_cast<std::uint32_t>(bits >> 32),
                  std::bit_cast<float>(static_cast<std::uint32_t>(bits))};
}

void encode(Codec codec, std::span<const double> src, std::span<double> wire,
            double topk_ratio) {
  const std::size_t n = src.size();
  switch (codec) {
    case Codec::kFp16: {
      // The kernels write half/byte lanes straight into the wire doubles;
      // zero the final partial double first so the tail bytes are canonical
      // (byte-comparable across ranks and in golden tests).
      if (n % 4 != 0 && !wire.empty()) wire.back() = 0.0;
      active_table().fp16_pack(src.data(), n,
                               reinterpret_cast<std::uint16_t*>(wire.data()));
      return;
    }
    case Codec::kInt8: {
      const std::size_t chunks = div_up(n, kInt8ChunkElements);
      const auto& kt = active_table();
      if (n % 8 != 0 && !wire.empty()) wire.back() = 0.0;
      auto* bytes = reinterpret_cast<signed char*>(wire.data() + chunks);
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * kInt8ChunkElements;
        const std::size_t len = std::min(kInt8ChunkElements, n - begin);
        const double m = kt.absmax(src.data() + begin, len);
        const double scale = m / 127.0;
        wire[c] = scale;
        kt.int8_quantize(src.data() + begin, len,
                         m > 0.0 ? 127.0 / m : 0.0, bytes + begin);
      }
      return;
    }
    case Codec::kTopK: {
      const std::size_t k = topk_count(n, topk_ratio);
      // Deterministic selection: |value| descending, index ascending on
      // ties — a total order, so the result is independent of the sort
      // algorithm and of any threading above this call.
      std::vector<std::uint32_t> idx(n);
      std::iota(idx.begin(), idx.end(), 0u);
      std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                        idx.end(), [&src](std::uint32_t a, std::uint32_t b) {
                          const double fa = std::abs(src[a]);
                          const double fb = std::abs(src[b]);
                          if (fa != fb) return fa > fb;
                          return a < b;
                        });
      std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
      for (std::size_t i = 0; i < k; ++i) {
        wire[i] = pack_topk_slot(
            TopKSlot{idx[i], static_cast<float>(src[idx[i]])});
      }
      return;
    }
    case Codec::kNone:
    case Codec::kAuto:
      break;
  }
  std::copy(src.begin(), src.end(), wire.begin());
}

void decode(Codec codec, std::span<const double> wire, std::span<double> dst,
            double topk_ratio) {
  const std::size_t n = dst.size();
  switch (codec) {
    case Codec::kFp16:
      active_table().fp16_unpack(
          reinterpret_cast<const std::uint16_t*>(wire.data()), n, dst.data());
      return;
    case Codec::kInt8: {
      const std::size_t chunks = div_up(n, kInt8ChunkElements);
      const auto& kt = active_table();
      const auto* bytes =
          reinterpret_cast<const signed char*>(wire.data() + chunks);
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * kInt8ChunkElements;
        const std::size_t len = std::min(kInt8ChunkElements, n - begin);
        kt.int8_dequantize(bytes + begin, len, wire[c], dst.data() + begin);
      }
      return;
    }
    case Codec::kTopK: {
      std::fill(dst.begin(), dst.end(), 0.0);
      const std::size_t k = topk_count(n, topk_ratio);
      for (std::size_t i = 0; i < k; ++i) {
        const TopKSlot slot = unpack_topk_slot(wire[i]);
        dst[slot.index] = static_cast<double>(slot.value);
      }
      return;
    }
    case Codec::kNone:
    case Codec::kAuto:
      break;
  }
  std::copy(wire.begin(), wire.end(), dst.begin());
}

void topk_residual(std::span<const double> u, std::span<const double> wire,
                   std::span<double> residual) {
  if (residual.data() != u.data()) {
    std::copy(u.begin(), u.end(), residual.begin());
  }
  for (const double packed : wire) {
    residual[unpack_topk_slot(packed).index] = 0.0;
  }
}

// ---------------------------------------------------------------------------
// Compressed collectives
// ---------------------------------------------------------------------------

std::size_t all_reduce_scratch_elements(Codec codec, std::size_t n, int world,
                                        double topk_ratio) noexcept {
  return static_cast<std::size_t>(world) * wire_elements(codec, n, topk_ratio) +
         n;
}

std::size_t broadcast_scratch_elements(Codec codec, std::size_t n,
                                       double topk_ratio) noexcept {
  return wire_elements(codec, n, topk_ratio);
}

void all_reduce_encoded(Communicator& comm, std::span<double> data,
                        Codec codec, ReduceOp op, double topk_ratio,
                        std::span<double> scratch, int plan_task) {
  const int P = comm.size();
  const int rank = comm.rank();
  const std::size_t n = data.size();
  const std::size_t w = wire_elements(codec, n, topk_ratio);
  const auto codec_id = static_cast<std::uint16_t>(codec);
  const auto block = [&](int r) {
    return scratch.subspan(static_cast<std::size_t>(r) * w, w);
  };

  // Ring all-gather of the P encoded vectors: at step s, ship the block
  // received at step s-1 (own block at s=1) to the right neighbour.  The
  // frames carry the codec id, so the shm/socket backends genuinely move
  // the compressed bytes.
  const int right = (rank + 1) % P;
  const int left = (rank - 1 + P) % P;
  for (int s = 1; s < P; ++s) {
    const int send_block = (rank - s + 1 + P) % P;
    const int recv_block = (rank - s + P) % P;
    comm.send(right, block(send_block), wire::kDataTag, plan_task, codec_id);
    comm.recv(left, block(recv_block));
  }

  // Every rank decodes and reduces all P vectors in rank order 0..P-1 with
  // the elementwise kernels — bitwise identical across ranks by
  // construction, regardless of the gather's message timing.
  const std::span<double> temp = scratch.subspan(
      static_cast<std::size_t>(P) * w, n);
  decode(codec, block(0), data, topk_ratio);
  for (int r = 1; r < P; ++r) {
    decode(codec, block(r), temp, topk_ratio);
    detail::accumulate(data, temp, op);
  }
  detail::finalize(data, op, P);
}

void compressed_all_reduce(Communicator& comm, std::span<double> data,
                           Codec codec, ReduceOp op, double topk_ratio,
                           std::span<double> scratch, int plan_task) {
  const std::size_t w = wire_elements(codec, data.size(), topk_ratio);
  encode(codec, data,
         scratch.subspan(static_cast<std::size_t>(comm.rank()) * w, w),
         topk_ratio);
  all_reduce_encoded(comm, data, codec, op, topk_ratio, scratch, plan_task);
}

void compressed_broadcast(Communicator& comm, std::span<double> data,
                          Codec codec, int root, std::span<double> scratch,
                          int plan_task) {
  const int P = comm.size();
  const int rank = comm.rank();
  const std::size_t w = wire_elements(codec, data.size());
  const std::span<double> wire_buf = scratch.subspan(0, w);
  const auto codec_id = static_cast<std::uint16_t>(codec);

  if (rank == root) encode(codec, data, wire_buf);

  // Binomial tree over virtual ranks (root -> 0), mirroring the lossless
  // Communicator::broadcast but shipping the encoded vector.
  const int vrank = (rank - root + P) % P;
  int mask = 1;
  while (mask < P) {
    if (vrank & mask) {
      const int src = (((vrank & ~mask) % P) + root) % P;
      comm.recv(src, wire_buf);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    const int vdst = vrank | mask;
    if ((vrank & mask) == 0 && vdst < P) {
      comm.send((vdst + root) % P, wire_buf, wire::kDataTag, plan_task,
                codec_id);
    }
    mask >>= 1;
  }

  // The root decodes its own encoding too: every rank's post-broadcast
  // state is the decoded wire, bitwise identical across the cluster.
  decode(codec, wire_buf, data);
}

}  // namespace spdkfac::comm
