#include "comm/collectives.hpp"

#include <cmath>
#include <stdexcept>

namespace spdkfac::comm {

using detail::accumulate;
using detail::even_partition;
using detail::finalize;
using detail::offsets_of;

const char* to_string(AllReduceAlgo algo) noexcept {
  switch (algo) {
    case AllReduceAlgo::kRing:
      return "ring";
    case AllReduceAlgo::kHalvingDoubling:
      return "halving-doubling";
    case AllReduceAlgo::kFlatTree:
      return "flat-tree";
    case AllReduceAlgo::kHierarchical:
      return "hierarchical";
    case AllReduceAlgo::kAuto:
      return "auto";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Algorithms
// ---------------------------------------------------------------------------

void all_reduce_ring(Communicator& comm, std::span<double> data,
                     ReduceOp op) {
  // The seed's algorithm: Communicator::all_reduce composes the ring
  // reduce-scatter and all-gather primitives.
  comm.all_reduce(data, op);
}

namespace {

/// Ring all-reduce over a strided sub-group: members are the ranks
/// first + i*stride for i in [0, members); `index` is the caller's i.
/// Handles kSum/kMax only (kAverage is finalized by the caller so the
/// division happens exactly once over the full world size).
void ring_all_reduce_strided(Communicator& comm, std::span<double> data,
                             ReduceOp op, int members, int index, int first,
                             int stride) {
  if (members <= 1) return;
  auto rank_of = [&](int i) { return first + i * stride; };
  const int right = rank_of((index + 1) % members);
  const int left = rank_of((index + members - 1) % members);
  const auto counts = even_partition(data.size(), members);
  const auto offsets = offsets_of(counts);
  std::vector<double> recv_buf;

  // Same schedule as Communicator::reduce_scatter_v / all_gather_v, with
  // ranks mapped through the group: additions for a segment happen in ring
  // order regardless of the observer, so every member's final vector is
  // bitwise identical.
  for (int step = 0; step < members - 1; ++step) {
    const int send_seg = ((index - step - 1) % members + members) % members;
    const int recv_seg = ((index - step - 2) % members + members) % members;
    comm.send(right, data.subspan(offsets[send_seg], counts[send_seg]));
    std::span<double> recv_view =
        data.subspan(offsets[recv_seg], counts[recv_seg]);
    recv_buf.resize(recv_view.size());
    comm.recv(left, recv_buf);
    accumulate(recv_view, recv_buf, op);
  }
  for (int step = 0; step < members - 1; ++step) {
    const int send_seg = ((index - step) % members + members) % members;
    const int recv_seg = ((index - step - 1) % members + members) % members;
    comm.send(right, data.subspan(offsets[send_seg], counts[send_seg]));
    comm.recv(left, data.subspan(offsets[recv_seg], counts[recv_seg]));
  }
}

}  // namespace

void all_reduce_halving_doubling(Communicator& comm, std::span<double> data,
                                 ReduceOp op) {
  const int P = comm.size();
  const int rank = comm.rank();
  if (P == 1 || data.empty()) return;

  int pof2 = 1;
  while (pof2 * 2 <= P) pof2 *= 2;
  const int rem = P - pof2;

  // Fold: among the first 2*rem ranks, each odd rank ships its vector to
  // the even rank below and sits out the power-of-two core; the survivors
  // are renumbered 0..pof2-1.
  int core_rank;  // rank within the core, -1 when folded away
  if (rank < 2 * rem) {
    if (rank % 2 == 1) {
      comm.send(rank - 1, data);
      core_rank = -1;
    } else {
      std::vector<double> folded(data.size());
      comm.recv(rank + 1, folded);
      accumulate(data, folded, op);
      core_rank = rank / 2;
    }
  } else {
    core_rank = rank - rem;
  }
  auto orig = [&](int cr) { return cr < rem ? 2 * cr : cr + rem; };

  if (core_rank >= 0) {
    const auto counts = even_partition(data.size(), pof2);
    const auto offsets = offsets_of(counts);
    auto segs = [&](std::size_t s_lo, std::size_t s_hi) {
      return data.subspan(offsets[s_lo], offsets[s_hi] - offsets[s_lo]);
    };

    // Recursive vector halving: ranks and segments share the range [lo, hi),
    // which halves every step; each rank keeps the half containing itself
    // and exchanges the other half with its partner across the midpoint.
    struct Step {
      int partner;
      std::size_t keep_lo, keep_hi, give_lo, give_hi;
    };
    std::vector<Step> steps;
    std::size_t lo = 0, hi = static_cast<std::size_t>(pof2);
    for (int stride = pof2 / 2; stride >= 1; stride /= 2) {
      const std::size_t mid = lo + static_cast<std::size_t>(stride);
      const bool low = static_cast<std::size_t>(core_rank) < mid;
      const int partner = orig(low ? core_rank + stride : core_rank - stride);
      const std::size_t keep_lo = low ? lo : mid, keep_hi = low ? mid : hi;
      const std::size_t give_lo = low ? mid : lo, give_hi = low ? hi : mid;
      comm.send(partner, segs(give_lo, give_hi));
      std::vector<double> buf(offsets[keep_hi] - offsets[keep_lo]);
      comm.recv(partner, buf);
      accumulate(segs(keep_lo, keep_hi), buf, op);
      steps.push_back({partner, keep_lo, keep_hi, give_lo, give_hi});
      lo = keep_lo;
      hi = keep_hi;
    }

    // Recursive doubling all-gather: replay the exchanges in reverse, this
    // time copying owned (fully reduced) ranges instead of combining.  Each
    // range's values were computed at exactly one rank, so all core ranks
    // end bitwise identical.
    for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
      comm.send(it->partner, segs(it->keep_lo, it->keep_hi));
      comm.recv(it->partner, segs(it->give_lo, it->give_hi));
    }

    finalize(data, op, P);
  }

  // Unfold: the even rank of each folded pair forwards the final vector.
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      comm.send(rank + 1, data);
    } else {
      comm.recv(rank - 1, data);
    }
  }
}

void all_reduce_flat_tree(Communicator& comm, std::span<double> data,
                          ReduceOp op) {
  const int P = comm.size();
  if (P == 1 || data.empty()) return;
  if (comm.rank() == 0) {
    std::vector<double> buf(data.size());
    // Accumulation in rank order: deterministic, and computed only here.
    for (int src = 1; src < P; ++src) {
      comm.recv(src, buf);
      accumulate(data, buf, op);
    }
    finalize(data, op, P);
  } else {
    comm.send(0, data);
  }
  comm.broadcast(data, 0);
}

void all_reduce_hierarchical(Communicator& comm, std::span<double> data,
                             ReduceOp op, const Topology& topo) {
  const int P = comm.size();
  const int rank = comm.rank();
  if (P == 1 || data.empty()) return;
  const Topology t =
      topo.world_size() == P ? topo : Topology::flat(P);
  const int G = t.gpus_per_node;
  const int leader = t.leader_of(rank);
  // Average divides once by the full world size at the very end; the
  // reduction levels run the raw combine.
  const ReduceOp level_op = op == ReduceOp::kAverage ? ReduceOp::kSum : op;

  // 1) Intra-node reduce to the leader, local-rank order.
  if (rank == leader) {
    std::vector<double> buf(data.size());
    for (int lr = 1; lr < G; ++lr) {
      comm.recv(leader + lr, buf);
      accumulate(data, buf, level_op);
    }
  } else {
    comm.send(leader, data);
  }

  // 2) Ring all-reduce across node leaders over the inter-node links.
  if (rank == leader) {
    ring_all_reduce_strided(comm, data, level_op, t.nodes, t.node_of(rank),
                            /*first=*/0, /*stride=*/G);
  }

  // 3) Intra-node broadcast of the leader's (identical-across-leaders)
  // result.
  if (rank == leader) {
    for (int lr = 1; lr < G; ++lr) comm.send(leader + lr, data);
  } else {
    comm.recv(leader, data);
  }

  finalize(data, op, P);
}

// ---------------------------------------------------------------------------
// Communicator dispatch
// ---------------------------------------------------------------------------

void Communicator::all_reduce(std::span<double> data, ReduceOp op,
                              AllReduceAlgo algo) {
  if (algo == AllReduceAlgo::kAuto) {
    algo = AlgorithmSelector(topology()).choose(data.size());
  }
  switch (algo) {
    case AllReduceAlgo::kRing:
      all_reduce_ring(*this, data, op);
      return;
    case AllReduceAlgo::kHalvingDoubling:
      all_reduce_halving_doubling(*this, data, op);
      return;
    case AllReduceAlgo::kFlatTree:
      all_reduce_flat_tree(*this, data, op);
      return;
    case AllReduceAlgo::kHierarchical:
      all_reduce_hierarchical(*this, data, op, topology());
      return;
    case AllReduceAlgo::kAuto:
      break;  // resolved above
  }
  throw std::invalid_argument("all_reduce: unknown algorithm");
}

// ---------------------------------------------------------------------------
// AlgorithmSelector
// ---------------------------------------------------------------------------

std::size_t AlgorithmSelector::index_of(AllReduceAlgo algo) {
  const auto i = static_cast<std::size_t>(algo);
  if (i >= kAllReduceAlgos.size()) {
    throw std::invalid_argument(
        "AlgorithmSelector: kAuto has no cost terms of its own");
  }
  return i;
}

AlgorithmSelector::AlgorithmSelector(const Topology& topo) : topo_(topo) {
  const int P = std::max(topo.world_size(), 1);
  const LinkModel& F = topo.flat_link();
  const double p = static_cast<double>(P);

  int pof2 = 1;
  while (pof2 * 2 <= P) pof2 *= 2;
  const double q = static_cast<double>(pof2);
  const double log2p = std::ceil(std::log2(p));

  auto& ring = terms_[index_of(AllReduceAlgo::kRing)];
  ring = {2.0 * (p - 1.0) * F.alpha, 2.0 * (p - 1.0) / p * F.beta};

  auto& hd = terms_[index_of(AllReduceAlgo::kHalvingDoubling)];
  hd = {2.0 * std::log2(q) * F.alpha, 2.0 * (q - 1.0) / q * F.beta};
  if (pof2 != P) {  // fold + unfold: one extra full-vector exchange
    hd.alpha += 2.0 * F.alpha;
    hd.beta += 2.0 * F.beta;
  }

  auto& tree = terms_[index_of(AllReduceAlgo::kFlatTree)];
  tree = {(p - 1.0 + log2p) * F.alpha, (p - 1.0 + log2p) * F.beta};

  const LinkModel& I = topo.intra;
  const LinkModel& E = topo.inter;
  const double g = static_cast<double>(topo.gpus_per_node);
  const double n = static_cast<double>(topo.nodes);
  auto& hier = terms_[index_of(AllReduceAlgo::kHierarchical)];
  hier = {2.0 * (g - 1.0) * I.alpha + 2.0 * (n - 1.0) * E.alpha,
          2.0 * (g - 1.0) * I.beta +
              (n > 1.0 ? 2.0 * (n - 1.0) / n * E.beta : 0.0)};

  // kHierarchical competes only on genuinely two-level shapes: with one
  // GPU per node it degenerates to the exact ring schedule, so offering it
  // would only duplicate ring in selection/fitting sweeps.
  available_ = {P > 1, P > 1, P > 1, topo.hierarchical()};
  if (P == 1) {
    terms_ = {};  // no communication on a single device
    available_[index_of(AllReduceAlgo::kRing)] = true;
  }
}

bool AlgorithmSelector::available(AllReduceAlgo algo) const noexcept {
  const auto i = static_cast<std::size_t>(algo);
  return i < available_.size() && available_[i];
}

const LinkModel& AlgorithmSelector::term(AllReduceAlgo algo) const {
  return terms_[index_of(algo)];
}

void AlgorithmSelector::set_term(AllReduceAlgo algo, LinkModel term) {
  terms_[index_of(algo)] = term;
}

double AlgorithmSelector::cost(AllReduceAlgo algo,
                               std::size_t elements) const {
  if (algo == AllReduceAlgo::kAuto) return best_cost(elements);
  return terms_[index_of(algo)](static_cast<double>(elements));
}

AllReduceAlgo AlgorithmSelector::choose(std::size_t elements) const noexcept {
  AllReduceAlgo best = AllReduceAlgo::kRing;
  double best_cost = terms_[0](static_cast<double>(elements));
  for (AllReduceAlgo algo : kAllReduceAlgos) {
    if (!available(algo)) continue;
    const double c =
        terms_[static_cast<std::size_t>(algo)](static_cast<double>(elements));
    if (c < best_cost) {
      best_cost = c;
      best = algo;
    }
  }
  return best;
}

}  // namespace spdkfac::comm
