// In-process transport backend: ranks are threads of one process, messages
// move through the Channel mailboxes (comm/channel.hpp) exactly as the
// pre-transport cluster did.  This is the test default and the only
// backend ThreadSanitizer can see end-to-end.
//
// Failure detection (timeout armed — see comm/fault.hpp): recv() waits in
// heartbeat-interval slices, pinging all peers while blocked and resetting
// the deadline on any frame from the awaited rank (heartbeats included).
// On expiry it broadcasts a failure notice naming the silent rank and
// throws RankFailure; a notice received while waiting is rethrown as-is,
// so every survivor names the same root dead rank.  The barrier names the
// lowest non-arrived rank via the Barrier's arrival stamps.
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "comm/channel.hpp"
#include "comm/fault.hpp"
#include "comm/transport.hpp"
#include "comm/wire.hpp"

namespace spdkfac::comm {

/// State shared by all ranks of one in-process cluster: the directed
/// channel matrix and the condvar barrier.  Owned jointly by the per-rank
/// transports (shared_ptr), so a group outlives every worker using it.
class InProcessGroup {
 public:
  explicit InProcessGroup(int size)
      : size_(size), barrier_(static_cast<std::size_t>(size)) {
    channels_.resize(static_cast<std::size_t>(size) * size);
    for (auto& ch : channels_) ch = std::make_unique<Channel>();
  }

  int size() const noexcept { return size_; }

  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src) * size_ + dst];
  }

  Barrier& barrier() noexcept { return barrier_; }

 private:
  int size_;
  Barrier barrier_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [src * size + dst]
};

namespace {

class InProcessTransport final : public Transport {
 public:
  InProcessTransport(std::shared_ptr<InProcessGroup> group, int rank)
      : group_(std::move(group)), rank_(rank) {}

  TransportKind kind() const noexcept override {
    return TransportKind::kInProcess;
  }
  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return group_->size(); }

  void send(int dst, std::span<const double> payload, std::uint16_t tag,
            int /*plan_task*/, std::uint16_t /*codec*/) override {
    group_->channel(rank_, dst).send(payload, tag);
  }

  std::vector<double> recv(int src) override {
    Channel& ch = group_->channel(src, rank_);
    const double timeout = timeout_s();
    if (timeout <= 0.0) {
      for (;;) {
        Channel::Message msg = ch.recv();
        if (msg.tag == wire::kHeartbeatTag) continue;
        if (msg.tag == wire::kFailureTag) throw forward_notice(msg);
        return std::move(msg.payload);
      }
    }
    const auto clock_now = [] { return std::chrono::steady_clock::now(); };
    auto deadline = clock_now() + std::chrono::duration<double>(timeout);
    for (;;) {
      auto msg = ch.recv_for(heartbeat_interval_s());
      if (msg) {
        // Any frame from `src` — heartbeat or data — proves it alive.
        deadline = clock_now() + std::chrono::duration<double>(timeout);
        if (msg->tag == wire::kHeartbeatTag) continue;
        if (msg->tag == wire::kFailureTag) throw forward_notice(*msg);
        return std::move(msg->payload);
      }
      heartbeat();
      if (clock_now() >= deadline) {
        notify_failure(src);
        throw RankFailure(src, "recv", FailureCause::kTimeout, rank_,
                          timeout);
      }
    }
  }

  bool recv_into(int src, std::span<double> out) override {
    std::vector<double> msg = recv(src);
    if (msg.size() != out.size()) return false;
    std::copy(msg.begin(), msg.end(), out.begin());
    return true;
  }

  void barrier() override {
    const int missing = group_->barrier().arrive_and_wait_for(
        static_cast<std::size_t>(rank_), timeout_s());
    if (missing >= 0) {
      // Every timed-out waiter computes the same missing rank from the
      // arrival stamps, so no notice broadcast is needed.
      throw RankFailure(missing, "barrier", FailureCause::kTimeout, rank_,
                        timeout_s());
    }
  }

  void heartbeat() override {
    if (timeout_s() <= 0.0) return;
    const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    const auto interval_ns = static_cast<std::int64_t>(
        heartbeat_interval_s() * 1e9);
    std::int64_t last = last_heartbeat_ns_.load(std::memory_order_relaxed);
    if (now_ns - last < interval_ns ||
        !last_heartbeat_ns_.compare_exchange_strong(
            last, now_ns, std::memory_order_relaxed)) {
      return;
    }
    note_heartbeat_round();
    for (int peer = 0; peer < size(); ++peer) {
      if (peer == rank_) continue;
      group_->channel(rank_, peer).send({}, wire::kHeartbeatTag);
    }
  }

 private:
  /// Re-broadcasts a received failure notice before rethrowing it (gossip):
  /// a peer blocked on *this* rank learns the root dead rank instead of
  /// later misattributing the failure to us when our heartbeats stop.
  RankFailure forward_notice(const Channel::Message& msg) {
    const int dead =
        msg.payload.empty() ? -1 : static_cast<int>(msg.payload.front());
    notify_failure(dead);
    return RankFailure(dead, "recv", FailureCause::kPeerNotice, rank_,
                       timeout_s());
  }

  void notify_failure(int dead) {
    const std::vector<double> who{static_cast<double>(dead)};
    for (int peer = 0; peer < size(); ++peer) {
      if (peer == rank_ || peer == dead) continue;
      group_->channel(rank_, peer).send(who, wire::kFailureTag);
    }
  }

  std::shared_ptr<InProcessGroup> group_;
  int rank_;
  std::atomic<std::int64_t> last_heartbeat_ns_{0};
};

}  // namespace

std::shared_ptr<InProcessGroup> make_in_process_group(int size) {
  if (size <= 0) {
    throw std::invalid_argument("in-process group size must be positive");
  }
  return std::make_shared<InProcessGroup>(size);
}

std::unique_ptr<Transport> make_in_process_transport(
    std::shared_ptr<InProcessGroup> group, int rank) {
  if (rank < 0 || rank >= group->size()) {
    throw std::invalid_argument("in-process transport: bad rank");
  }
  return std::make_unique<InProcessTransport>(std::move(group), rank);
}

}  // namespace spdkfac::comm
