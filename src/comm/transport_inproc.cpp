// In-process transport backend: ranks are threads of one process, messages
// move through the Channel mailboxes (comm/channel.hpp) exactly as the
// pre-transport cluster did.  This is the test default and the only
// backend ThreadSanitizer can see end-to-end.
#include <memory>
#include <stdexcept>
#include <vector>

#include "comm/channel.hpp"
#include "comm/transport.hpp"

namespace spdkfac::comm {

/// State shared by all ranks of one in-process cluster: the directed
/// channel matrix and the condvar barrier.  Owned jointly by the per-rank
/// transports (shared_ptr), so a group outlives every worker using it.
class InProcessGroup {
 public:
  explicit InProcessGroup(int size)
      : size_(size), barrier_(static_cast<std::size_t>(size)) {
    channels_.resize(static_cast<std::size_t>(size) * size);
    for (auto& ch : channels_) ch = std::make_unique<Channel>();
  }

  int size() const noexcept { return size_; }

  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src) * size_ + dst];
  }

  Barrier& barrier() noexcept { return barrier_; }

 private:
  int size_;
  Barrier barrier_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [src * size + dst]
};

namespace {

class InProcessTransport final : public Transport {
 public:
  InProcessTransport(std::shared_ptr<InProcessGroup> group, int rank)
      : group_(std::move(group)), rank_(rank) {}

  TransportKind kind() const noexcept override {
    return TransportKind::kInProcess;
  }
  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return group_->size(); }

  void send(int dst, std::span<const double> payload, std::uint16_t /*tag*/,
            int /*plan_task*/) override {
    group_->channel(rank_, dst).send(payload);
  }

  std::vector<double> recv(int src) override {
    return group_->channel(src, rank_).recv();
  }

  bool recv_into(int src, std::span<double> out) override {
    return group_->channel(src, rank_).recv_into(out);
  }

  void barrier() override { group_->barrier().arrive_and_wait(); }

 private:
  std::shared_ptr<InProcessGroup> group_;
  int rank_;
};

}  // namespace

std::shared_ptr<InProcessGroup> make_in_process_group(int size) {
  if (size <= 0) {
    throw std::invalid_argument("in-process group size must be positive");
  }
  return std::make_shared<InProcessGroup>(size);
}

std::unique_ptr<Transport> make_in_process_transport(
    std::shared_ptr<InProcessGroup> group, int rank) {
  if (rank < 0 || rank >= group->size()) {
    throw std::invalid_argument("in-process transport: bad rank");
  }
  return std::make_unique<InProcessTransport>(std::move(group), rank);
}

}  // namespace spdkfac::comm
