#include "comm/transport.hpp"

#include <sys/un.h>

#include <cstdlib>
#include <stdexcept>

#include "comm/fault.hpp"
#include "comm/wire.hpp"

namespace spdkfac::comm {

std::size_t max_socket_path_bytes() noexcept {
  return sizeof(sockaddr_un{}.sun_path) - 1;
}

void validate_socket_path(const std::string& path) {
  if (path.empty()) {
    throw std::invalid_argument("unix socket path is empty");
  }
  if (path.size() > max_socket_path_bytes()) {
    throw std::invalid_argument(
        "unix socket path exceeds sun_path capacity (" +
        std::to_string(path.size()) + " > " +
        std::to_string(max_socket_path_bytes()) +
        " bytes) — binding would silently truncate it: " + path +
        " (set TMPDIR to a shorter directory)");
  }
}

std::string default_tmp_dir() {
  const char* env = std::getenv("TMPDIR");
  std::string dir = (env != nullptr && *env != '\0') ? env : "/tmp";
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  return dir;
}

const char* to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kInProcess:
      return "inproc";
    case TransportKind::kSharedMemory:
      return "shm";
    case TransportKind::kSocket:
      return "socket";
  }
  return "?";
}

TransportKind transport_from_string(const std::string& name) {
  if (name == "inproc") return TransportKind::kInProcess;
  if (name == "shm") return TransportKind::kSharedMemory;
  if (name == "socket") return TransportKind::kSocket;
  throw std::invalid_argument("unknown transport '" + name +
                              "' (expected inproc, shm or socket)");
}

bool Transport::recv_into(int src, std::span<double> out) {
  const std::vector<double> msg = recv(src);
  if (msg.size() != out.size()) return false;
  std::copy(msg.begin(), msg.end(), out.begin());
  return true;
}

void Transport::barrier() {
  // Dissemination barrier: in round k every rank signals (rank + 2^k) and
  // waits on (rank - 2^k); after ceil(log2 P) rounds every rank has
  // transitively heard from every other.  Zero-length frames ride the same
  // FIFO streams as data, and since barriers are collectives (called in
  // the same global order on every rank) the streams stay aligned.
  const int world = size();
  try {
    for (int hop = 1; hop < world; hop <<= 1) {
      send((rank() + hop) % world, {}, wire::kBarrierTag);
      recv((rank() - hop + world) % world);
    }
  } catch (RankFailure& failure) {
    // Surface the primitive-level failure as the collective it broke.
    failure.set_context("barrier", failure.plan_task());
    throw;
  }
}

}  // namespace spdkfac::comm
