// Process-per-rank launcher behind Cluster::launch_collect.
//
// The out-of-process backends need rank-0/launcher-owned setup *before* the
// workers exist: the shm arena must be mapped prior to fork so children
// inherit the pages, and the socket ranks need an agreed rendezvous
// directory.  This file owns that sequencing:
//
//   1. prepare shared state (arena mmap / mkdtemp for socket paths);
//   2. fork one child per rank — no exec, so the caller's std::function
//      survives into the child via copy-on-write;
//   3. each child builds its transport (wrapped with fault injection and
//      armed with the comm timeout per LaunchOptions), runs fn, writes its
//      result vector to a pipe (uint64 count + raw doubles) and _exit()s —
//      _exit skips atexit/leak-check machinery that must not run twice;
//   4. the parent reads every pipe in rank order (children progress
//      independently, so no pipe-capacity deadlock) under the optional
//      collect deadline — a straggler past it is SIGKILLed — then reaps
//      with waitpid and throws a LaunchFailure detailing *how* each rank
//      died (signal number, exit status, missing result) plus the results
//      the surviving ranks still delivered.
//
// kInProcess goes through the same entry point with threads and a shared
// results vector, so tests can iterate one API over all three backends.
#include <dirent.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/fault.hpp"
#include "comm/transport.hpp"

namespace spdkfac::comm {

std::string RankExit::describe() const {
  std::string out = "rank " + std::to_string(rank) + ": ";
  if (signaled) {
    out += "killed by signal " + std::to_string(term_signal);
    if (const char* name = ::strsignal(term_signal)) {
      out += std::string(" (") + name + ")";
    }
  } else if (exit_status != 0) {
    out += "exit status " + std::to_string(exit_status);
  } else if (!error.empty()) {
    out += error;
  } else if (!wrote_result) {
    out += "no result";
  } else {
    out += "ok";
  }
  return out;
}

namespace {

using RankFn = std::function<std::vector<double>(Communicator&)>;

bool write_exact(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, p + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

/// read_exact with an optional deadline (<= 0: wait forever).  Returns
/// false on EOF, error, or deadline expiry.
bool read_exact_for(int fd, void* data, std::size_t n, double timeout_s) {
  const bool timed = timeout_s > 0.0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  auto* p = static_cast<unsigned char*>(data);
  std::size_t done = 0;
  while (done < n) {
    if (timed) {
      const double left = std::chrono::duration<double>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
      if (left <= 0.0) return false;
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int r = ::poll(&pfd, 1, static_cast<int>(left * 1e3) + 1);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (r == 0) return false;  // deadline expired
    }
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

/// Applies LaunchOptions to a freshly built transport: fault-injection
/// wrap for the victim rank, comm deadline for everyone.
std::unique_ptr<Transport> arm_transport(std::unique_ptr<Transport> transport,
                                         int rank, const LaunchOptions& opts) {
  if (opts.fault.enabled_for(rank)) {
    transport = with_fault_injection(std::move(transport), opts.fault);
  }
  transport->set_timeout(opts.comm_timeout_s);
  return transport;
}

/// Child side: run fn over the given transport and report the result
/// through `result_fd`.  Never returns.
[[noreturn]] void child_main(std::unique_ptr<Transport> transport,
                             const Topology& topo, const RankFn& fn,
                             int result_fd) {
  int status = 1;
  try {
    Communicator comm(*transport, topo);
    const std::vector<double> result = fn(comm);
    transport.reset();  // flush + tear down the wire before reporting
    const std::uint64_t count = result.size();
    if (write_exact(result_fd, &count, sizeof(count)) &&
        write_exact(result_fd, result.data(), count * sizeof(double))) {
      status = 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[spdkfac rank] %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "[spdkfac rank] unknown exception\n");
  }
  ::close(result_fd);
  ::_exit(status);
}

std::vector<std::vector<double>> launch_processes(
    const Topology& topo, const RankFn& fn,
    const std::function<std::unique_ptr<Transport>(int)>& make_transport,
    const LaunchOptions& opts) {
  const int world = topo.world_size();
  std::vector<pid_t> pids(static_cast<std::size_t>(world), -1);
  std::vector<int> read_fds(static_cast<std::size_t>(world), -1);

  for (int r = 0; r < world; ++r) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error("launch_collect: pipe failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error("launch_collect: fork failed");
    }
    if (pid == 0) {
      ::close(fds[0]);
      for (int fd : read_fds) {
        if (fd >= 0) ::close(fd);  // siblings' pipe ends
      }
      std::unique_ptr<Transport> transport;
      try {
        transport = arm_transport(make_transport(r), r, opts);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[spdkfac rank] %s\n", e.what());
        ::_exit(1);
      }
      child_main(std::move(transport), topo, fn, fds[1]);
    }
    ::close(fds[1]);
    pids[static_cast<std::size_t>(r)] = pid;
    read_fds[static_cast<std::size_t>(r)] = fds[0];
  }

  // Collect results in rank order first (each child can fill its pipe and
  // exit independently), then reap.  A rank that blows the collect
  // deadline is SIGKILLed so a wedged mesh cannot wedge the launcher.
  std::vector<std::vector<double>> results(static_cast<std::size_t>(world));
  std::vector<RankExit> exits(static_cast<std::size_t>(world));
  for (int r = 0; r < world; ++r) {
    RankExit& exit_info = exits[static_cast<std::size_t>(r)];
    exit_info.rank = r;
    const int fd = read_fds[static_cast<std::size_t>(r)];
    std::uint64_t count = 0;
    if (read_exact_for(fd, &count, sizeof(count), opts.collect_timeout_s)) {
      auto& out = results[static_cast<std::size_t>(r)];
      out.resize(static_cast<std::size_t>(count));
      exit_info.wrote_result = read_exact_for(
          fd, out.data(), out.size() * sizeof(double), opts.collect_timeout_s);
      if (!exit_info.wrote_result) out.clear();
    }
    ::close(fd);
    if (!exit_info.wrote_result && opts.collect_timeout_s > 0.0) {
      ::kill(pids[static_cast<std::size_t>(r)], SIGKILL);
    }
  }

  bool any_failed = false;
  std::string failures;
  for (int r = 0; r < world; ++r) {
    RankExit& exit_info = exits[static_cast<std::size_t>(r)];
    int status = 0;
    while (::waitpid(pids[static_cast<std::size_t>(r)], &status, 0) < 0 &&
           errno == EINTR) {
    }
    if (WIFSIGNALED(status)) {
      exit_info.signaled = true;
      exit_info.term_signal = WTERMSIG(status);
    } else if (WIFEXITED(status)) {
      exit_info.exit_status = WEXITSTATUS(status);
    }
    if (!exit_info.clean()) {
      any_failed = true;
      failures += (failures.empty() ? "" : "; ") + exit_info.describe();
    }
  }
  if (any_failed) {
    throw LaunchFailure("launch_collect: worker failure (" + failures + ")",
                        std::move(exits), std::move(results));
  }
  return results;
}

std::vector<std::vector<double>> launch_threads(const Topology& topo,
                                                const RankFn& fn,
                                                const LaunchOptions& opts) {
  const int world = topo.world_size();
  auto group = make_in_process_group(world);
  std::vector<std::vector<double>> results(static_cast<std::size_t>(world));
  std::vector<RankExit> exits(static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));

  for (int r = 0; r < world; ++r) {
    exits[static_cast<std::size_t>(r)].rank = r;
    threads.emplace_back([&, r] {
      RankExit& exit_info = exits[static_cast<std::size_t>(r)];
      try {
        auto transport =
            arm_transport(make_in_process_transport(group, r), r, opts);
        Communicator comm(*transport, topo);
        results[static_cast<std::size_t>(r)] = fn(comm);
        exit_info.wrote_result = true;
      } catch (const std::exception& e) {
        exit_info.error = e.what();
      } catch (...) {
        exit_info.error = "unknown exception";
      }
    });
  }
  for (auto& t : threads) t.join();

  bool any_failed = false;
  std::string failures;
  for (const RankExit& exit_info : exits) {
    if (exit_info.clean()) continue;
    any_failed = true;
    failures += (failures.empty() ? "" : "; ") + exit_info.describe();
  }
  if (any_failed) {
    throw LaunchFailure("launch_collect: worker failure (" + failures + ")",
                        std::move(exits), std::move(results));
  }
  return results;
}

/// Rendezvous directory for one socket cluster; removed — with whatever a
/// crashed child left behind (listener sockets a SIGKILLed rank never
/// unlinked) — when the launch finishes.
class SocketRendezvous {
 public:
  explicit SocketRendezvous(int world) {
    // $TMPDIR-honoring scratch dir; validate the longest listener path any
    // rank will bind (<dir>/spdkfacXXXXXX/s.r<world-1>) *before* mkdtemp,
    // so a too-deep TMPDIR fails with the path and the sun_path limit
    // instead of a silent truncation at bind time.
    std::string tmpl = default_tmp_dir() + "/spdkfacXXXXXX";
    validate_socket_path(tmpl + "/s.r" + std::to_string(world > 0 ? world - 1
                                                                  : 0));
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("launch_collect: mkdtemp failed for " + tmpl);
    }
    dir_ = tmpl;
  }

  ~SocketRendezvous() {
    // Sweep everything in the directory, not a precomputed rank list: a
    // rank killed mid-handshake strands its listener socket here, and a
    // leftover entry would make rmdir fail and leak the directory.
    if (DIR* dir = ::opendir(dir_.c_str())) {
      while (const dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((dir_ + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(dir_.c_str());
  }

  SocketRendezvous(const SocketRendezvous&) = delete;
  SocketRendezvous& operator=(const SocketRendezvous&) = delete;

  std::string base_path() const { return dir_ + "/s"; }

 private:
  std::string dir_;
};

}  // namespace

std::vector<std::vector<double>> Cluster::launch_collect(
    TransportKind kind, const Topology& topo,
    const std::function<std::vector<double>(Communicator&)>& fn,
    const LaunchOptions& opts) {
  if (topo.nodes <= 0 || topo.gpus_per_node <= 0) {
    throw std::invalid_argument("launch_collect: world size must be positive");
  }
  switch (kind) {
    case TransportKind::kInProcess:
      return launch_threads(topo, fn, opts);
    case TransportKind::kSharedMemory: {
      // Map the arena pre-fork; every child inherits the same pages.
      auto arena = make_shm_arena(topo.world_size(), opts.shm_ring_bytes);
      return launch_processes(
          topo, fn,
          [&arena](int rank) { return make_shm_transport(arena, rank); },
          opts);
    }
    case TransportKind::kSocket: {
      SocketRendezvous rendezvous(topo.world_size());
      const SocketEndpoint ep{rendezvous.base_path(), topo.world_size()};
      return launch_processes(
          topo, fn,
          [&ep](int rank) { return make_socket_transport(ep, rank); }, opts);
    }
  }
  throw std::invalid_argument("launch_collect: unknown transport");
}

void Cluster::launch(TransportKind kind, const Topology& topo,
                     const std::function<void(Communicator&)>& fn,
                     const LaunchOptions& opts) {
  launch_collect(
      kind, topo,
      [&fn](Communicator& comm) {
        fn(comm);
        return std::vector<double>{};
      },
      opts);
}

}  // namespace spdkfac::comm
