// Process-per-rank launcher behind Cluster::launch_collect.
//
// The out-of-process backends need rank-0/launcher-owned setup *before* the
// workers exist: the shm arena must be mapped prior to fork so children
// inherit the pages, and the socket ranks need an agreed rendezvous
// directory.  This file owns that sequencing:
//
//   1. prepare shared state (arena mmap / mkdtemp for socket paths);
//   2. fork one child per rank — no exec, so the caller's std::function
//      survives into the child via copy-on-write;
//   3. each child builds its transport, runs fn, writes its result vector
//      to a pipe (uint64 count + raw doubles) and _exit()s — _exit skips
//      atexit/leak-check machinery that must not run twice;
//   4. the parent reads every pipe in rank order (children progress
//      independently, so no pipe-capacity deadlock), reaps with waitpid,
//      and throws if any rank failed.
//
// kInProcess goes through the same entry point with threads and a shared
// results vector, so tests can iterate one API over all three backends.
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/transport.hpp"

namespace spdkfac::comm {

namespace {

using RankFn = std::function<std::vector<double>(Communicator&)>;

bool write_exact(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, p + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(w);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t n) {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

/// Child side: run fn over the given transport and report the result
/// through `result_fd`.  Never returns.
[[noreturn]] void child_main(std::unique_ptr<Transport> transport,
                             const Topology& topo, const RankFn& fn,
                             int result_fd) {
  int status = 1;
  try {
    Communicator comm(*transport, topo);
    const std::vector<double> result = fn(comm);
    transport.reset();  // flush + tear down the wire before reporting
    const std::uint64_t count = result.size();
    if (write_exact(result_fd, &count, sizeof(count)) &&
        write_exact(result_fd, result.data(), count * sizeof(double))) {
      status = 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[spdkfac rank] %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "[spdkfac rank] unknown exception\n");
  }
  ::close(result_fd);
  ::_exit(status);
}

std::vector<std::vector<double>> launch_processes(
    const Topology& topo, const RankFn& fn,
    const std::function<std::unique_ptr<Transport>(int)>& make_transport) {
  const int world = topo.world_size();
  std::vector<pid_t> pids(static_cast<std::size_t>(world), -1);
  std::vector<int> read_fds(static_cast<std::size_t>(world), -1);

  for (int r = 0; r < world; ++r) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw std::runtime_error("launch_collect: pipe failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw std::runtime_error("launch_collect: fork failed");
    }
    if (pid == 0) {
      ::close(fds[0]);
      for (int fd : read_fds) {
        if (fd >= 0) ::close(fd);  // siblings' pipe ends
      }
      std::unique_ptr<Transport> transport;
      try {
        transport = make_transport(r);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[spdkfac rank] %s\n", e.what());
        ::_exit(1);
      }
      child_main(std::move(transport), topo, fn, fds[1]);
    }
    ::close(fds[1]);
    pids[static_cast<std::size_t>(r)] = pid;
    read_fds[static_cast<std::size_t>(r)] = fds[0];
  }

  // Collect results in rank order first (each child can fill its pipe and
  // exit independently), then reap.
  std::vector<std::vector<double>> results(static_cast<std::size_t>(world));
  std::vector<bool> ok(static_cast<std::size_t>(world), false);
  for (int r = 0; r < world; ++r) {
    const int fd = read_fds[static_cast<std::size_t>(r)];
    std::uint64_t count = 0;
    if (read_exact(fd, &count, sizeof(count))) {
      auto& out = results[static_cast<std::size_t>(r)];
      out.resize(static_cast<std::size_t>(count));
      ok[static_cast<std::size_t>(r)] =
          read_exact(fd, out.data(), out.size() * sizeof(double));
    }
    ::close(fd);
  }

  std::string failures;
  for (int r = 0; r < world; ++r) {
    int status = 0;
    while (::waitpid(pids[static_cast<std::size_t>(r)], &status, 0) < 0 &&
           errno == EINTR) {
    }
    const bool exited_clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!exited_clean || !ok[static_cast<std::size_t>(r)]) {
      failures += (failures.empty() ? "rank " : ", rank ") + std::to_string(r);
    }
  }
  if (!failures.empty()) {
    throw std::runtime_error("launch_collect: worker failure (" + failures +
                             ")");
  }
  return results;
}

std::vector<std::vector<double>> launch_threads(const Topology& topo,
                                                const RankFn& fn) {
  const int world = topo.world_size();
  auto group = make_in_process_group(world);
  std::vector<std::vector<double>> results(static_cast<std::size_t>(world));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(world));
  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < world; ++r) {
    threads.emplace_back([&, r] {
      try {
        auto transport = make_in_process_transport(group, r);
        Communicator comm(*transport, topo);
        results[static_cast<std::size_t>(r)] = fn(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

/// Rendezvous directory for one socket cluster; removed (with any leftover
/// listener sockets) when the launch finishes.
class SocketRendezvous {
 public:
  SocketRendezvous() {
    char tmpl[] = "/tmp/spdkfacXXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      throw std::runtime_error("launch_collect: mkdtemp failed");
    }
    dir_ = tmpl;
  }

  ~SocketRendezvous() {
    for (int r = 0; r < cleaned_ranks_; ++r) {
      ::unlink((base_path() + ".r" + std::to_string(r)).c_str());
    }
    ::rmdir(dir_.c_str());
  }

  SocketRendezvous(const SocketRendezvous&) = delete;
  SocketRendezvous& operator=(const SocketRendezvous&) = delete;

  std::string base_path() const { return dir_ + "/s"; }
  void set_world(int world) { cleaned_ranks_ = world; }

 private:
  std::string dir_;
  int cleaned_ranks_ = 0;
};

}  // namespace

std::vector<std::vector<double>> Cluster::launch_collect(
    TransportKind kind, const Topology& topo,
    const std::function<std::vector<double>(Communicator&)>& fn,
    const LaunchOptions& opts) {
  if (topo.nodes <= 0 || topo.gpus_per_node <= 0) {
    throw std::invalid_argument("launch_collect: world size must be positive");
  }
  switch (kind) {
    case TransportKind::kInProcess:
      return launch_threads(topo, fn);
    case TransportKind::kSharedMemory: {
      // Map the arena pre-fork; every child inherits the same pages.
      auto arena = make_shm_arena(topo.world_size(), opts.shm_ring_bytes);
      return launch_processes(topo, fn, [&arena](int rank) {
        return make_shm_transport(arena, rank);
      });
    }
    case TransportKind::kSocket: {
      SocketRendezvous rendezvous;
      rendezvous.set_world(topo.world_size());
      const SocketEndpoint ep{rendezvous.base_path(), topo.world_size()};
      return launch_processes(
          topo, fn, [&ep](int rank) { return make_socket_transport(ep, rank); });
    }
  }
  throw std::invalid_argument("launch_collect: unknown transport");
}

void Cluster::launch(TransportKind kind, const Topology& topo,
                     const std::function<void(Communicator&)>& fn,
                     const LaunchOptions& opts) {
  launch_collect(
      kind, topo,
      [&fn](Communicator& comm) {
        fn(comm);
        return std::vector<double>{};
      },
      opts);
}

}  // namespace spdkfac::comm
