// Pluggable rank-to-rank transport — the seam that takes the cluster
// out-of-process.
//
// Everything above this interface (Communicator's collectives, the
// AsyncCommEngine, the optimizer) speaks ordered, reliable point-to-point
// messages plus a barrier; everything below it decides what a "rank" is and
// what the wire looks like.  Three backends implement the contract:
//
//   kInProcess     ranks are threads in one address space; each directed
//                  (src, dst) pair owns an unbounded mutex/condvar mailbox
//                  (comm/channel.hpp) and the barrier is a condvar barrier.
//                  The test default — fastest, fully TSan-visible.
//   kSharedMemory  ranks are processes on one host sharing a mmap'd arena
//                  created by the launcher before fork: one fixed-capacity
//                  SPSC byte ring per directed pair carrying wire.hpp
//                  frames, with futex doorbells for ring-full/ring-empty
//                  and a futex sense-reversing barrier.
//   kSocket        ranks are processes connected by a full mesh of
//                  SOCK_STREAM Unix-domain sockets (multi-host-shaped: the
//                  framing assumes nothing but a byte stream).  Frames are
//                  the wire.hpp length-prefixed protocol; setup is an
//                  accept/connect handshake (lower rank listens, higher
//                  rank connects, both verify a handshake frame).
//
// The send contract mirrors the in-process Channel: send() never blocks on
// the receiver (unbounded local buffering; the out-of-process backends
// enqueue encoded frames per peer and pump them from a dedicated exec
// worker), which is what makes the collectives' neighbour-exchange
// patterns deadlock-free on a bounded wire.  recv() blocks; messages from
// one sender arrive in send order.  All backends must be observationally
// identical: the cross-backend conformance/determinism suites hold every
// backend to bitwise-identical collective results.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace spdkfac::exec {
class ThreadPool;
}

namespace spdkfac::comm {

enum class TransportKind {
  kInProcess,     ///< threads + channel mailboxes (default)
  kSharedMemory,  ///< process-per-rank, mmap'd rings + futex doorbells
  kSocket,        ///< process-per-rank, Unix-domain socket mesh
};

const char* to_string(TransportKind kind) noexcept;

/// Parses "inproc" / "shm" / "socket"; throws std::invalid_argument on
/// anything else (used by example/bench CLIs).
TransportKind transport_from_string(const std::string& name);

/// Ordered reliable point-to-point messaging + barrier between P ranks.
/// One instance per rank; all methods are called from that rank's threads.
/// Concurrent sends are safe; recv(src) must not race another recv of the
/// same src (the Communicator/engine discipline already serializes all
/// collective traffic per rank).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const noexcept = 0;
  virtual int rank() const noexcept = 0;
  virtual int size() const noexcept = 0;

  /// Copies `payload` toward dst's mailbox and returns without waiting for
  /// delivery.  `tag`/`plan_task`/`codec` ride in the frame header (protocol
  /// metadata; delivery order is FIFO per (src, dst) pair regardless).
  /// codec != 0 marks a comm::Codec-encoded payload — the backends ship it
  /// verbatim, so compressed bytes genuinely cross the wire.
  virtual void send(int dst, std::span<const double> payload,
                    std::uint16_t tag = 0, int plan_task = -1,
                    std::uint16_t codec = 0) = 0;

  /// Blocking receive of the next message from `src`.
  virtual std::vector<double> recv(int src) = 0;

  /// Receives the next message from `src` into `out`; returns false (the
  /// message is consumed and discarded) when its length != out.size().
  virtual bool recv_into(int src, std::span<double> out);

  /// Blocks until all ranks arrive.  Default: a dissemination barrier over
  /// zero-length tagged messages (log2(P) rounds); the in-process and
  /// shared-memory backends override it with condvar/futex barriers.
  virtual void barrier();

  // -------------------------------------------------------------------------
  // Failure detection (see comm/fault.hpp).  With a timeout armed, every
  // blocking primitive becomes deadline-aware: a blocked call that sees no
  // progress from the awaited rank for `seconds` throws a RankFailure
  // naming it, after best-effort broadcasting a failure notice so every
  // other survivor learns the *root* dead rank instead of blaming the
  // stalled-but-alive neighbour it happens to be waiting on.  While
  // blocked, a rank emits heartbeat frames to all peers every quarter
  // deadline, so alive-but-waiting ranks are never declared dead.
  // -------------------------------------------------------------------------

  /// Arms (seconds > 0) or disarms (<= 0, the default) the failure
  /// deadline.  Disarmed, every primitive blocks forever — the exact
  /// pre-fault-tolerance behavior.  Set before concurrent use begins.
  virtual void set_timeout(double seconds) noexcept { timeout_s_ = seconds; }
  virtual double timeout_s() const noexcept { return timeout_s_; }

  /// Best-effort liveness ping to every peer, internally rate-limited to a
  /// quarter of the timeout; no-op when the deadline is disarmed.  The
  /// async engine calls this between operations so a rank busy executing a
  /// long collective queue still reads as alive.
  virtual void heartbeat() {}

  /// Heartbeat *emission rounds* this rank has actually sent (post
  /// rate-limiting; each round pings all peers).  0 while the deadline is
  /// disarmed — a control-plane observability counter, never consulted by
  /// the failure detection itself.
  virtual std::size_t heartbeats_sent() const noexcept {
    return heartbeats_sent_.load(std::memory_order_relaxed);
  }

 protected:
  /// Deadline slice between heartbeat emissions while blocked.
  double heartbeat_interval_s() const noexcept {
    const double quarter = timeout_s_ / 4.0;
    return quarter < 0.001 ? 0.001 : quarter;
  }

  /// Backends call this once per emitted heartbeat round.
  void note_heartbeat_round() noexcept {
    heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  double timeout_s_ = 0.0;
  std::atomic<std::size_t> heartbeats_sent_{0};
};

// ---------------------------------------------------------------------------
// Backend factories.  The group/arena objects hold the state shared by all
// ranks of one cluster (channel matrix, mmap'd arena) and are created by
// the launcher — before spawning threads, or before fork() so every worker
// process inherits the mapping.
// ---------------------------------------------------------------------------

class InProcessGroup;
std::shared_ptr<InProcessGroup> make_in_process_group(int size);
std::unique_ptr<Transport> make_in_process_transport(
    std::shared_ptr<InProcessGroup> group, int rank);

inline constexpr std::size_t kDefaultShmRingBytes = std::size_t{1} << 18;

class ShmArena;
/// Maps the shared arena (MAP_SHARED | MAP_ANONYMOUS): P*P SPSC rings of
/// `ring_bytes` each plus the futex barrier.  Must be created before the
/// worker processes fork.  ring_bytes must be a power of two >= 1024
/// (power-of-two capacity keeps the 32-bit ring cursors exact across
/// wraparound); messages larger than a ring stream through it in chunks.
std::shared_ptr<ShmArena> make_shm_arena(
    int size, std::size_t ring_bytes = kDefaultShmRingBytes);
std::unique_ptr<Transport> make_shm_transport(std::shared_ptr<ShmArena> arena,
                                              int rank);

struct SocketEndpoint {
  /// Listener paths are `<base_path>.r<rank>`; keep the base short (Unix
  /// socket paths cap at ~107 bytes).
  std::string base_path;
  int size = 0;
};

/// Longest Unix-domain socket path the platform can bind
/// (sizeof(sockaddr_un::sun_path) - 1; 107 bytes on Linux).
std::size_t max_socket_path_bytes() noexcept;

/// Throws std::invalid_argument when `path` is empty or too long to fit
/// sockaddr_un::sun_path — the error names the path and both lengths so a
/// too-deep $TMPDIR is diagnosable instead of silently truncating.
void validate_socket_path(const std::string& path);

/// Scratch directory for rendezvous/ctl sockets: $TMPDIR when set and
/// non-empty (trailing slashes stripped), else "/tmp".
std::string default_tmp_dir();

/// Connects the full mesh (blocking, with connect retries while peers are
/// still starting); throws std::runtime_error when a peer cannot be
/// reached or fails the handshake.
std::unique_ptr<Transport> make_socket_transport(const SocketEndpoint& ep,
                                                 int rank);

}  // namespace spdkfac::comm
