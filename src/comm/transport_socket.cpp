// Socket transport backend: process-per-rank over a full mesh of
// SOCK_STREAM Unix-domain sockets.  Multi-host-shaped: nothing below the
// factory assumes a shared filesystem beyond the endpoint paths, and the
// framing (wire.hpp) assumes only an ordered byte stream, so swapping the
// address family for TCP changes setup code only.
//
// Setup (accept/connect handshake):
//   1. every rank binds and listens at `<base_path>.r<rank>`;
//   2. rank r actively connects to every s < r — retrying while the peer's
//      listener is still appearing — and sends a handshake frame
//      (kHandshakeTag, src = r, empty payload);
//   3. rank r accepts size-1-r connections from the ranks above it and
//      identifies each by its handshake frame.
//   After the mesh is up the listener is closed and unlinked; each peer
//   pair shares exactly one socket.
//
// Data path: send() encodes one frame and enqueues it on the peer's send
// queue, pumped by a dedicated exec worker (detail::FrameSender) — so
// send never blocks on a full kernel buffer, which keeps the collectives'
// neighbour exchanges deadlock-free.  recv(src) reads the peer's socket
// into a FrameParser, reassembling frames across short reads; a torn or
// corrupt stream (bad magic/version/length, unexpected src) throws
// instead of hanging.
//
// Failure detection (timeout armed — see comm/fault.hpp): recv polls the
// peer socket in heartbeat-interval slices, pinging all peers while
// blocked; any bytes from the awaited peer (heartbeats included) reset the
// deadline.  A dead peer surfaces three ways, all as RankFailure: EOF /
// ECONNRESET (kPeerClosed — the kernel noticed the SIGKILL), deadline
// expiry (kTimeout), or a forwarded failure notice naming the root dead
// rank (kPeerNotice).
//
// Teardown: the destructor flushes every send queue, then shuts down and
// closes the sockets.  Flushed bytes survive the close (kernel-buffered),
// so a rank that finishes early never strands a peer mid-collective.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/fault.hpp"
#include "comm/transport.hpp"
#include "comm/transport_detail.hpp"
#include "comm/wire.hpp"

namespace spdkfac::comm {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("socket transport: " + what + ": " +
                           std::strerror(errno));
}

/// Owns one file descriptor until release()d — keeps the fds that are in
/// flight during the handshake (accepted / freshly dialed, not yet stored
/// in peer_fds_) from leaking when a later setup step throws.
class FdGuard {
 public:
  explicit FdGuard(int fd = -1) noexcept : fd_(fd) {}
  ~FdGuard() {
    if (fd_ >= 0) ::close(fd_);
  }
  FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = other.release();
    }
    return *this;
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  int get() const noexcept { return fd_; }
  int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_;
};

sockaddr_un endpoint_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  validate_socket_path(path);  // throws with the path + sun_path limit
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void write_all(int fd, const unsigned char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a SIGPIPE kill.
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    done += static_cast<std::size_t>(w);
  }
}

void read_exact(int fd, unsigned char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, data + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (r == 0) {
      throw std::runtime_error("socket transport: peer closed mid-frame");
    }
    done += static_cast<std::size_t>(r);
  }
}

/// poll() one fd for `events`, retrying EINTR.  Returns true when ready,
/// false on timeout.
bool poll_fd(int fd, short events, double timeout_s) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int timeout_ms =
      timeout_s >= 0.0 ? static_cast<int>(timeout_s * 1e3) + 1 : -1;
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return r > 0;
  }
}

class SocketTransport final : public Transport {
 public:
  SocketTransport(const SocketEndpoint& ep, int rank)
      : rank_(rank),
        size_(ep.size),
        listen_path_(listener_path(ep.base_path, rank)),
        peer_fds_(static_cast<std::size_t>(ep.size), -1),
        parsers_(static_cast<std::size_t>(ep.size)),
        pending_data_(static_cast<std::size_t>(ep.size)),
        pending_barrier_(static_cast<std::size_t>(ep.size)) {
    try {
      connect_mesh(ep);
    } catch (...) {
      close_all();
      throw;
    }
    sender_ = std::make_unique<detail::FrameSender>(
        size_, [this](int dst, std::span<const unsigned char> bytes) {
          timed_write(dst, bytes.data(), bytes.size());
        });
  }

  ~SocketTransport() override {
    sender_.reset();  // flush every queued frame before closing
    close_all();
  }

  TransportKind kind() const noexcept override {
    return TransportKind::kSocket;
  }
  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return size_; }

  void send(int dst, std::span<const double> payload, std::uint16_t tag,
            int plan_task, std::uint16_t codec) override {
    wire::FrameHeader header;
    header.tag = tag;
    header.src = rank_;
    header.plan_task = plan_task;
    header.elements = payload.size();
    header.codec = codec;
    sender_->send(dst, wire::encode_frame(header, payload));
  }

  std::vector<double> recv(int src) override {
    return next_frame_of(src, /*want_barrier=*/false).payload;
  }

  void barrier() override {
    // Dissemination barrier (as Transport::barrier), but pulling frames
    // through the tag demultiplexer: after a lost or out-of-phase message
    // the stream can interleave barrier signals with data frames, and a
    // barrier signal consumed by a pending data recv (or vice versa) would
    // turn one rank's failure into a protocol-corruption crash on a
    // healthy one.
    const int world = size_;
    try {
      for (int hop = 1; hop < world; hop <<= 1) {
        send((rank_ + hop) % world, {}, wire::kBarrierTag, -1, 0);
        next_frame_of((rank_ - hop + world) % world, /*want_barrier=*/true);
      }
    } catch (RankFailure& failure) {
      failure.set_context("barrier", failure.plan_task());
      throw;
    }
  }

  void heartbeat() override {
    if (timeout_s() <= 0.0 || !sender_) return;
    const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count();
    const auto interval_ns =
        static_cast<std::int64_t>(heartbeat_interval_s() * 1e9);
    std::int64_t last = last_heartbeat_ns_.load(std::memory_order_relaxed);
    if (now_ns - last < interval_ns ||
        !last_heartbeat_ns_.compare_exchange_strong(
            last, now_ns, std::memory_order_relaxed)) {
      return;
    }
    note_heartbeat_round();
    wire::FrameHeader ping;
    ping.tag = wire::kHeartbeatTag;
    ping.src = rank_;
    const auto frame = wire::encode_frame(ping, {});
    for (int peer = 0; peer < size_; ++peer) {
      if (peer == rank_) continue;
      try {
        sender_->send(peer, frame);
      } catch (...) {
        // Liveness pings are best-effort; a poisoned peer queue must not
        // break the detection path that is trying to report it.
      }
    }
  }

 private:
  static std::string listener_path(const std::string& base, int rank) {
    return base + ".r" + std::to_string(rank);
  }

  /// Tag demultiplexer: returns `src`'s next barrier or data frame, as
  /// requested, stashing frames of the other class for their own consumer.
  /// In lockstep operation nothing is ever stashed (collectives keep the
  /// streams aligned); the queues only fill when a fault desynced a peer,
  /// and then they are what keeps a barrier signal from being misread as a
  /// short data message.  Heartbeats are dropped here; a failure notice is
  /// re-broadcast (gossip — peers blocked on *us* learn the root dead rank
  /// too) and rethrown as a structured RankFailure.
  wire::Frame next_frame_of(int src, bool want_barrier) {
    auto& mine = (want_barrier ? pending_barrier_ : pending_data_)[
        static_cast<std::size_t>(src)];
    if (!mine.empty()) {
      wire::Frame frame = std::move(mine.front());
      mine.pop_front();
      return frame;
    }
    for (;;) {
      wire::Frame frame = next_frame(src);
      if (frame.header.src != src) {
        throw std::runtime_error("socket transport: frame src mismatch");
      }
      if (frame.header.tag == wire::kHeartbeatTag) continue;
      if (frame.header.tag == wire::kFailureTag) {
        const int dead = frame.payload.empty()
                             ? -1
                             : static_cast<int>(frame.payload.front());
        notify_failure(dead);
        throw RankFailure(dead, "recv", FailureCause::kPeerNotice, rank_,
                          timeout_s());
      }
      const bool is_barrier = frame.header.tag == wire::kBarrierTag;
      if (is_barrier == want_barrier) return frame;
      (is_barrier ? pending_barrier_ : pending_data_)[
          static_cast<std::size_t>(src)].push_back(std::move(frame));
    }
  }

  /// Reassembles the next complete frame from `src`, honoring the armed
  /// deadline.  Any bytes from the peer reset the deadline (progress ==
  /// liveness); EOF and expiry turn into RankFailures after a best-effort
  /// notice broadcast.
  wire::Frame next_frame(int src) {
    wire::FrameParser& parser = parsers_[static_cast<std::size_t>(src)];
    const int fd = peer_fds_[static_cast<std::size_t>(src)];
    const double timeout = timeout_s();
    const bool timed = timeout > 0.0;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout);
    while (!parser.has_frame()) {
      if (timed) {
        if (!poll_fd(fd, POLLIN, heartbeat_interval_s())) {
          heartbeat();
          if (std::chrono::steady_clock::now() >= deadline) {
            notify_failure(src);
            throw RankFailure(src, "recv", FailureCause::kTimeout, rank_,
                              timeout);
          }
          continue;
        }
      }
      unsigned char chunk[1 << 16];
      const ssize_t r = ::read(fd, chunk, sizeof(chunk));
      if (r < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          notify_failure(src);
          throw RankFailure(src, "recv", FailureCause::kPeerClosed, rank_,
                            timeout);
        }
        throw_errno("read");
      }
      if (r == 0) {
        notify_failure(src);
        throw RankFailure(src, "recv", FailureCause::kPeerClosed, rank_,
                          timeout);
      }
      if (!parser.feed({chunk, static_cast<std::size_t>(r)})) {
        throw std::runtime_error(
            std::string("socket transport: corrupt stream from peer ") +
            std::to_string(src) + " (" + wire::to_string(parser.error()) +
            ")");
      }
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(timeout);
    }
    return parser.pop_frame();
  }

  /// FrameSender write hook: delivers one frame to `dst`, bounding each
  /// stall at the armed deadline (a peer that stops draining its socket is
  /// as dead as one that stopped sending).
  void timed_write(int dst, const unsigned char* data, std::size_t n) {
    const int fd = peer_fds_[static_cast<std::size_t>(dst)];
    const double timeout = timeout_s();
    if (timeout <= 0.0) {
      write_all(fd, data, n);
      return;
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration<double>(timeout);
    std::size_t done = 0;
    while (done < n) {
      if (!poll_fd(fd, POLLOUT, heartbeat_interval_s())) {
        if (std::chrono::steady_clock::now() >= deadline) {
          throw RankFailure(dst, "send", FailureCause::kTimeout, rank_,
                            timeout);
        }
        continue;
      }
      const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          throw RankFailure(dst, "send", FailureCause::kPeerClosed, rank_,
                            timeout);
        }
        throw_errno("send");
      }
      done += static_cast<std::size_t>(w);
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(timeout);
    }
  }

  void notify_failure(int dead) {
    if (!sender_) return;
    wire::FrameHeader header;
    header.tag = wire::kFailureTag;
    header.src = rank_;
    header.elements = 1;
    const double who[] = {static_cast<double>(dead)};
    const auto frame = wire::encode_frame(header, who);
    for (int peer = 0; peer < size_; ++peer) {
      if (peer == rank_ || peer == dead) continue;
      try {
        sender_->send(peer, frame);
      } catch (...) {
        // Best-effort: the local RankFailure is thrown regardless.
      }
    }
  }

  void connect_mesh(const SocketEndpoint& ep) {
    // 1. Listener first, so any peer's connect can queue in the backlog
    //    even while this rank is still dialing lower ranks.
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    ::unlink(listen_path_.c_str());
    sockaddr_un addr = endpoint_address(listen_path_);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind " + listen_path_);
    }
    if (::listen(listen_fd_, size_) != 0) throw_errno("listen");

    // 2. Dial every lower rank (their listeners may still be appearing).
    for (int peer = 0; peer < rank_; ++peer) {
      peer_fds_[static_cast<std::size_t>(peer)] = dial(ep, peer).release();
    }

    // 3. Accept the higher ranks, identified by their handshake frame.
    //    The guard owns each accepted fd until it is identified and
    //    stored, so a bad handshake can't leak it.
    for (int pending = size_ - 1 - rank_; pending > 0; --pending) {
      FdGuard conn;
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd >= 0) {
          conn = FdGuard(fd);
          break;
        }
        if (errno == EINTR) continue;  // signal-interrupted, not an error
        throw_errno("accept");
      }
      const wire::FrameHeader hello = read_handshake(conn.get());
      if (hello.src <= rank_ || hello.src >= size_ ||
          peer_fds_[static_cast<std::size_t>(hello.src)] != -1) {
        throw std::runtime_error("socket transport: bad handshake rank");
      }
      peer_fds_[static_cast<std::size_t>(hello.src)] = conn.release();
    }

    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(listen_path_.c_str());
  }

  FdGuard dial(const SocketEndpoint& ep, int peer) {
    const std::string path = listener_path(ep.base_path, peer);
    const sockaddr_un addr = endpoint_address(path);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
      if (fd.get() < 0) throw_errno("socket");
      if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        // Identify ourselves; the peer's accept loop reads this first.
        // The guard still owns the fd, so a failed write can't leak it.
        wire::FrameHeader hello;
        hello.tag = wire::kHandshakeTag;
        hello.src = rank_;
        const auto frame = wire::encode_frame(hello, {});
        write_all(fd.get(), frame.data(), frame.size());
        return fd;
      }
      const int err = errno;
      fd = FdGuard();
      if ((err != ENOENT && err != ECONNREFUSED) ||
          std::chrono::steady_clock::now() > deadline) {
        errno = err;
        throw_errno("connect " + path);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  wire::FrameHeader read_handshake(int fd) {
    unsigned char raw[wire::kHeaderBytes];
    read_exact(fd, raw, wire::kHeaderBytes);
    wire::FrameHeader header;
    const wire::DecodeStatus status = wire::decode_header(raw, header);
    if (status != wire::DecodeStatus::kOk ||
        header.tag != wire::kHandshakeTag || header.elements != 0) {
      throw std::runtime_error("socket transport: bad handshake frame");
    }
    return header;
  }

  void close_all() {
    for (int& fd : peer_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::unlink(listen_path_.c_str());
    }
  }

  int rank_;
  int size_;
  std::string listen_path_;
  int listen_fd_ = -1;
  std::vector<int> peer_fds_;           // one socket per peer, -1 = self
  std::vector<wire::FrameParser> parsers_;  // per-peer reassembly
  // Per-peer stashes for frames that arrived while the other class was
  // awaited (see next_frame_of).  Empty in lockstep operation.
  std::vector<std::deque<wire::Frame>> pending_data_, pending_barrier_;
  std::atomic<std::int64_t> last_heartbeat_ns_{0};
  std::unique_ptr<detail::FrameSender> sender_;
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(const SocketEndpoint& ep,
                                                 int rank) {
  if (ep.size <= 0) {
    throw std::invalid_argument("socket transport: size must be positive");
  }
  if (rank < 0 || rank >= ep.size) {
    throw std::invalid_argument("socket transport: bad rank");
  }
  return std::make_unique<SocketTransport>(SocketEndpoint{ep.base_path,
                                                          ep.size},
                                           rank);
}

}  // namespace spdkfac::comm
