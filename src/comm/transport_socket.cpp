// Socket transport backend: process-per-rank over a full mesh of
// SOCK_STREAM Unix-domain sockets.  Multi-host-shaped: nothing below the
// factory assumes a shared filesystem beyond the endpoint paths, and the
// framing (wire.hpp) assumes only an ordered byte stream, so swapping the
// address family for TCP changes setup code only.
//
// Setup (accept/connect handshake):
//   1. every rank binds and listens at `<base_path>.r<rank>`;
//   2. rank r actively connects to every s < r — retrying while the peer's
//      listener is still appearing — and sends a handshake frame
//      (kHandshakeTag, src = r, empty payload);
//   3. rank r accepts size-1-r connections from the ranks above it and
//      identifies each by its handshake frame.
//   After the mesh is up the listener is closed and unlinked; each peer
//   pair shares exactly one socket.
//
// Data path: send() encodes one frame and enqueues it on the peer's send
// queue, pumped by a dedicated exec worker (detail::FrameSender) — so
// send never blocks on a full kernel buffer, which keeps the collectives'
// neighbour exchanges deadlock-free.  recv(src) reads the peer's socket
// into a FrameParser, reassembling frames across short reads; a torn or
// corrupt stream (bad magic/version/length, unexpected src, EOF) throws
// instead of hanging.
//
// Teardown: the destructor flushes every send queue, then shuts down and
// closes the sockets.  Flushed bytes survive the close (kernel-buffered),
// so a rank that finishes early never strands a peer mid-collective.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.hpp"
#include "comm/transport_detail.hpp"
#include "comm/wire.hpp"

namespace spdkfac::comm {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("socket transport: " + what + ": " +
                           std::strerror(errno));
}

sockaddr_un endpoint_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("socket transport: endpoint path too long: " +
                                path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void write_all(int fd, const unsigned char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a SIGPIPE kill.
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    done += static_cast<std::size_t>(w);
  }
}

void read_exact(int fd, unsigned char* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, data + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (r == 0) {
      throw std::runtime_error("socket transport: peer closed mid-frame");
    }
    done += static_cast<std::size_t>(r);
  }
}

class SocketTransport final : public Transport {
 public:
  SocketTransport(const SocketEndpoint& ep, int rank)
      : rank_(rank),
        size_(ep.size),
        listen_path_(listener_path(ep.base_path, rank)),
        peer_fds_(static_cast<std::size_t>(ep.size), -1),
        parsers_(static_cast<std::size_t>(ep.size)) {
    try {
      connect_mesh(ep);
    } catch (...) {
      close_all();
      throw;
    }
    sender_ = std::make_unique<detail::FrameSender>(
        size_, [this](int dst, std::span<const unsigned char> bytes) {
          write_all(peer_fds_[static_cast<std::size_t>(dst)], bytes.data(),
                    bytes.size());
        });
  }

  ~SocketTransport() override {
    sender_.reset();  // flush every queued frame before closing
    close_all();
  }

  TransportKind kind() const noexcept override {
    return TransportKind::kSocket;
  }
  int rank() const noexcept override { return rank_; }
  int size() const noexcept override { return size_; }

  void send(int dst, std::span<const double> payload, std::uint16_t tag,
            int plan_task) override {
    wire::FrameHeader header;
    header.tag = tag;
    header.src = rank_;
    header.plan_task = plan_task;
    header.elements = payload.size();
    sender_->send(dst, wire::encode_frame(header, payload));
  }

  std::vector<double> recv(int src) override {
    wire::FrameParser& parser = parsers_[static_cast<std::size_t>(src)];
    const int fd = peer_fds_[static_cast<std::size_t>(src)];
    while (!parser.has_frame()) {
      unsigned char chunk[1 << 16];
      const ssize_t r = ::read(fd, chunk, sizeof(chunk));
      if (r < 0) {
        if (errno == EINTR) continue;
        throw_errno("read");
      }
      if (r == 0) {
        throw std::runtime_error("socket transport: peer " +
                                 std::to_string(src) + " closed");
      }
      if (!parser.feed({chunk, static_cast<std::size_t>(r)})) {
        throw std::runtime_error(
            std::string("socket transport: corrupt stream from peer ") +
            std::to_string(src) + " (" + wire::to_string(parser.error()) +
            ")");
      }
    }
    wire::Frame frame = parser.pop_frame();
    if (frame.header.src != src) {
      throw std::runtime_error("socket transport: frame src mismatch");
    }
    return std::move(frame.payload);
  }

 private:
  static std::string listener_path(const std::string& base, int rank) {
    return base + ".r" + std::to_string(rank);
  }

  void connect_mesh(const SocketEndpoint& ep) {
    // 1. Listener first, so any peer's connect can queue in the backlog
    //    even while this rank is still dialing lower ranks.
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    ::unlink(listen_path_.c_str());
    sockaddr_un addr = endpoint_address(listen_path_);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind " + listen_path_);
    }
    if (::listen(listen_fd_, size_) != 0) throw_errno("listen");

    // 2. Dial every lower rank (their listeners may still be appearing).
    for (int peer = 0; peer < rank_; ++peer) {
      peer_fds_[static_cast<std::size_t>(peer)] = dial(ep, peer);
    }

    // 3. Accept the higher ranks, identified by their handshake frame.
    for (int pending = size_ - 1 - rank_; pending > 0; --pending) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) throw_errno("accept");
      const wire::FrameHeader hello = read_handshake(fd);
      if (hello.src <= rank_ || hello.src >= size_ ||
          peer_fds_[static_cast<std::size_t>(hello.src)] != -1) {
        ::close(fd);
        throw std::runtime_error("socket transport: bad handshake rank");
      }
      peer_fds_[static_cast<std::size_t>(hello.src)] = fd;
    }

    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(listen_path_.c_str());
  }

  int dial(const SocketEndpoint& ep, int peer) {
    const std::string path = listener_path(ep.base_path, peer);
    const sockaddr_un addr = endpoint_address(path);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket");
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        // Identify ourselves; the peer's accept loop reads this first.
        wire::FrameHeader hello;
        hello.tag = wire::kHandshakeTag;
        hello.src = rank_;
        const auto frame = wire::encode_frame(hello, {});
        write_all(fd, frame.data(), frame.size());
        return fd;
      }
      const int err = errno;
      ::close(fd);
      if ((err != ENOENT && err != ECONNREFUSED) ||
          std::chrono::steady_clock::now() > deadline) {
        errno = err;
        throw_errno("connect " + path);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  wire::FrameHeader read_handshake(int fd) {
    unsigned char raw[wire::kHeaderBytes];
    read_exact(fd, raw, wire::kHeaderBytes);
    wire::FrameHeader header;
    const wire::DecodeStatus status = wire::decode_header(raw, header);
    if (status != wire::DecodeStatus::kOk ||
        header.tag != wire::kHandshakeTag || header.elements != 0) {
      throw std::runtime_error("socket transport: bad handshake frame");
    }
    return header;
  }

  void close_all() {
    for (int& fd : peer_fds_) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      ::unlink(listen_path_.c_str());
    }
  }

  int rank_;
  int size_;
  std::string listen_path_;
  int listen_fd_ = -1;
  std::vector<int> peer_fds_;           // one socket per peer, -1 = self
  std::vector<wire::FrameParser> parsers_;  // per-peer reassembly
  std::unique_ptr<detail::FrameSender> sender_;
};

}  // namespace

std::unique_ptr<Transport> make_socket_transport(const SocketEndpoint& ep,
                                                 int rank) {
  if (ep.size <= 0) {
    throw std::invalid_argument("socket transport: size must be positive");
  }
  if (rank < 0 || rank >= ep.size) {
    throw std::invalid_argument("socket transport: bad rank");
  }
  return std::make_unique<SocketTransport>(SocketEndpoint{ep.base_path,
                                                          ep.size},
                                           rank);
}

}  // namespace spdkfac::comm
