#include "comm/async_engine.hpp"

namespace spdkfac::comm {

AsyncCommEngine::AsyncCommEngine(Communicator& comm)
    : comm_(comm), epoch_(std::chrono::steady_clock::now()) {
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncCommEngine::~AsyncCommEngine() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

double AsyncCommEngine::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

CommHandle AsyncCommEngine::all_reduce_async(std::span<double> data,
                                             ReduceOp op, std::string name,
                                             AllReduceAlgo algo,
                                             int plan_task) {
  return submit(
      [data, op, algo](Communicator& comm) {
        comm.all_reduce(data, op, algo);
      },
      std::move(name), data.size(), plan_task);
}

CommHandle AsyncCommEngine::broadcast_async(std::span<double> data, int root,
                                            std::string name, int plan_task) {
  return submit(
      [data, root](Communicator& comm) { comm.broadcast(data, root); },
      std::move(name), data.size(), plan_task);
}

CommHandle AsyncCommEngine::submit(std::function<void(Communicator&)> fn,
                                   std::string name, std::size_t elements,
                                   int plan_task) {
  CommHandle handle;
  handle.state_ = std::make_shared<CommHandle::State>();
  Op op{std::move(fn), handle.state_, std::move(name), elements, now_s(),
        plan_task};
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(op));
    submitted_.fetch_add(1, std::memory_order_release);
  }
  cv_.notify_one();
  return handle;
}

void AsyncCommEngine::wait_all() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [this] {
    return queue_.empty() && completed_.load() == submitted_.load();
  });
}

std::vector<OpRecord> AsyncCommEngine::records() const {
  std::lock_guard lock(records_mutex_);
  return records_;
}

void AsyncCommEngine::worker_loop() {
  for (;;) {
    Op op;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      op = std::move(queue_.front());
      queue_.pop_front();
    }

    OpRecord record;
    record.name = op.name;
    record.submit_s = op.submit_s;
    record.elements = op.elements;
    record.plan_task = op.plan_task;
    record.start_s = now_s();
    op.fn(comm_);
    record.end_s = now_s();

    {
      std::lock_guard lock(records_mutex_);
      records_.push_back(std::move(record));
    }
    {
      std::lock_guard lock(op.state->mutex);
      op.state->done.store(true, std::memory_order_release);
    }
    op.state->cv.notify_all();
    completed_.fetch_add(1, std::memory_order_release);
    drained_cv_.notify_all();
  }
}

}  // namespace spdkfac::comm
