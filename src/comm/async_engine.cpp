#include "comm/async_engine.hpp"

#include <utility>

#include "comm/fault.hpp"

namespace spdkfac::comm {

AsyncCommEngine::AsyncCommEngine(Communicator& comm, exec::ThreadPool* pool)
    : comm_(comm), epoch_(std::chrono::steady_clock::now()) {
  if (pool != nullptr && pool->workers() > 0) {
    pool_ = pool;
  } else {
    // Standalone engine (or a caller running serially): the pump needs at
    // least one worker somewhere, since collectives block on peer ranks.
    owned_pool_ = std::make_unique<exec::ThreadPool>(1);
    pool_ = owned_pool_.get();
  }
}

AsyncCommEngine::~AsyncCommEngine() {
  // Every submitted op references caller-owned buffers and possibly this
  // engine's listener; drain before members die.  The final pump clears
  // `pumping_` only after releasing its last reference to us.
  wait_all();
}

double AsyncCommEngine::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

CommHandle AsyncCommEngine::all_reduce_async(std::span<double> data,
                                             ReduceOp op, std::string name,
                                             AllReduceAlgo algo,
                                             int plan_task) {
  return submit(
      [data, op, algo](Communicator& comm) {
        comm.all_reduce(data, op, algo);
      },
      std::move(name), data.size(), plan_task, data.data());
}

CommHandle AsyncCommEngine::broadcast_async(std::span<double> data, int root,
                                            std::string name, int plan_task) {
  return submit(
      [data, root](Communicator& comm) { comm.broadcast(data, root); },
      std::move(name), data.size(), plan_task, data.data());
}

CommHandle AsyncCommEngine::submit(std::function<void(Communicator&)> fn,
                                   std::string name, std::size_t elements,
                                   int plan_task, const double* data) {
  CommHandle handle;
  handle.state_ = std::make_shared<CommHandle::State>();
  Op op{std::move(fn), handle.state_, std::move(name), elements, now_s(),
        plan_task, data};
  bool schedule = false;
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(op));
    if (!pumping_) {
      pumping_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool_->submit([this] { pump(); });
  }
  return handle;
}

void AsyncCommEngine::set_completion_listener(
    std::function<void(const OpRecord&)> listener) {
  std::lock_guard lock(mutex_);
  listener_ = std::move(listener);
}

void AsyncCommEngine::wait_all() {
  std::unique_lock lock(mutex_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && !pumping_; });
}

std::vector<OpRecord> AsyncCommEngine::records() const {
  std::lock_guard lock(records_mutex_);
  return records_;
}

void AsyncCommEngine::pump() {
  for (;;) {
    Op op;
    std::function<void(const OpRecord&)> listener;
    {
      std::lock_guard lock(mutex_);
      if (queue_.empty()) {
        pumping_ = false;
        drained_cv_.notify_all();
        return;
      }
      op = std::move(queue_.front());
      queue_.pop_front();
      listener = listener_;
    }

    OpRecord record;
    record.name = op.name;
    record.submit_s = op.submit_s;
    record.elements = op.elements;
    record.data = op.data;
    record.plan_task = op.plan_task;

    // Let blocked peers know this rank is alive even when it spent the gap
    // since the last op computing rather than communicating.
    comm_.transport().heartbeat();

    std::exception_ptr err;
    {
      std::lock_guard lock(mutex_);
      err = error_;  // already poisoned: fail fast, don't touch the wire
    }
    record.start_s = now_s();
    if (!err) {
      try {
        op.fn(comm_);
      } catch (RankFailure& failure) {
        // Surface the schedule-level context: which collective, which
        // sched-plan task.  current_exception() is captured *after* the
        // annotation, so the stored error carries it.
        failure.set_context(op.name, op.plan_task);
        err = std::current_exception();
      } catch (...) {
        err = std::current_exception();
      }
      if (err) {
        std::lock_guard lock(mutex_);
        if (!error_) error_ = err;  // first failure wins
      }
    }
    record.end_s = now_s();
    if (err) {
      record.failed = true;
      try {
        std::rethrow_exception(err);
      } catch (const std::exception& e) {
        record.error = e.what();
      } catch (...) {
        record.error = "unknown error";
      }
    }

    {
      std::lock_guard lock(records_mutex_);
      records_.push_back(record);
    }
    {
      std::lock_guard lock(op.state->mutex);
      op.state->error = err;
      op.state->done.store(true, std::memory_order_release);
    }
    op.state->cv.notify_all();
    if (listener) listener(record);
    completed_.fetch_add(1, std::memory_order_release);
    drained_cv_.notify_all();
  }
}

}  // namespace spdkfac::comm
