// Asynchronous background communication engine — the Horovod analogue.
//
// SPD-KFAC's pipelining (paper Section IV-A / V-A) relies on submitting
// all-reduce and broadcast operations asynchronously ("hvd.allreduce_async_",
// "hvd.broadcast_async_") so they execute in the background while the caller
// keeps computing the next layer's Kronecker factor.  This engine reproduces
// that execution model on the shared exec::ThreadPool: operations are queued
// and executed in submission order by a serial *pump* task that the engine
// keeps scheduled on the pool while the queue is non-empty — one operation
// at a time, FIFO, exactly like the dedicated Horovod background thread it
// replaces, but sharing workers with the compute tasks so a rank's threads
// are owned in one place.  An engine constructed without a pool owns a
// single-worker pool of its own (standalone/test use).
//
// Callers synchronize through CommHandle::wait() — from threads *outside*
// the pool only (a pool task blocking on a handle could occupy the worker
// the pump needs) — or through the completion listener, which is how the
// DataflowExecutor turns op completions into successor work without
// blocking anything.
//
// Correctness contract (same as Horovod after negotiation): every rank must
// submit the same sequence of collective operations with matching shapes.
// The SPD-KFAC optimizer guarantees this by deriving the schedule
// deterministically from the model structure on every rank and submitting
// through the DataflowExecutor's ordered lane.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "exec/thread_pool.hpp"

namespace spdkfac::comm {

/// Completion handle for an asynchronously submitted operation.
class CommHandle {
 public:
  CommHandle() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// True once the pump finished the operation.
  bool done() const {
    return state_ != nullptr && state_->done.load(std::memory_order_acquire);
  }

  /// Blocks until the operation completes, then rethrows its error if it
  /// failed (RankFailure for a dead peer).  No-op for invalid handles.
  /// Must not be called from a task running on the engine's pool.
  void wait() const {
    if (!state_) return;
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock,
                    [s = state_.get()] { return s->done.load(); });
    if (state_->error) std::rethrow_exception(state_->error);
  }

  /// True once the operation completed *with* an error (wait() would
  /// throw).  Never true before done().
  bool failed() const {
    if (!state_ || !state_->done.load(std::memory_order_acquire)) {
      return false;
    }
    std::lock_guard lock(state_->mutex);
    return state_->error != nullptr;
  }

 private:
  friend class AsyncCommEngine;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> done{false};
    std::exception_ptr error;  ///< set before done when the op failed
  };
  std::shared_ptr<State> state_;
};

/// Wall-clock record of one executed operation (for overlap diagnostics and
/// the sched-plan equivalence suite).
struct OpRecord {
  std::string name;
  double submit_s = 0.0;  ///< seconds since engine start, at submission
  double start_s = 0.0;   ///< when the pump began executing
  double end_s = 0.0;     ///< when it finished
  std::size_t elements = 0;
  /// Payload the operation ran in place over (null for custom submit()
  /// ops).  Diagnostic only — the buffer may be reused after completion;
  /// tests use it to verify plan collectives execute zero-copy on arena
  /// slabs rather than staging copies.
  const double* data = nullptr;
  /// Id of the sched::IterationPlan task this operation executes, or -1 for
  /// out-of-plan traffic (e.g. the factor-time profile sync).
  int plan_task = -1;
  /// True when the operation threw instead of completing (a dead peer, or
  /// fail-fast after an earlier failure poisoned the engine); `error`
  /// carries its what().  Failed records must not feed the profiler.
  bool failed = false;
  std::string error;

  /// Pump-side execution time — what the online profiler accumulates as
  /// the measured cost of this collective.
  double duration_s() const noexcept { return end_s - start_s; }

  /// Submission-to-completion latency (includes queueing behind earlier
  /// operations).
  double latency_s() const noexcept { return end_s - submit_s; }
};

/// Per-rank background communication engine (see file comment).
///
/// The referenced Communicator is used exclusively by the pump once the
/// engine is constructed; callers must route *all* collectives through the
/// engine (submit + wait models a synchronous call) so the channel message
/// streams of different operations never interleave.
class AsyncCommEngine {
 public:
  /// `pool` is where the pump runs; the engine owns a single-worker pool
  /// when none is given.  A shared pool must outlive the engine.
  explicit AsyncCommEngine(Communicator& comm,
                           exec::ThreadPool* pool = nullptr);

  /// Drains the queue (every submitted operation completes).
  ~AsyncCommEngine();

  AsyncCommEngine(const AsyncCommEngine&) = delete;
  AsyncCommEngine& operator=(const AsyncCommEngine&) = delete;

  /// Queues an in-place all-reduce over `data`.  The caller must keep the
  /// underlying buffer alive and untouched until the handle completes.
  /// `algo` picks the collective algorithm (kAuto: per size/topology); all
  /// ranks must pass the same algorithm for the same operation.
  /// `plan_task` tags the execution record with the schedule-plan task the
  /// operation realizes (-1: out-of-plan traffic).
  CommHandle all_reduce_async(std::span<double> data,
                              ReduceOp op = ReduceOp::kAverage,
                              std::string name = "allreduce",
                              AllReduceAlgo algo = AllReduceAlgo::kRing,
                              int plan_task = -1);

  /// Queues an in-place broadcast from `root`.
  CommHandle broadcast_async(std::span<double> data, int root,
                             std::string name = "broadcast",
                             int plan_task = -1);

  /// Queues an arbitrary operation on the pump (escape hatch used by tests
  /// and by fused multi-tensor operations).  `data` tags the record with
  /// the payload pointer (see OpRecord::data).
  CommHandle submit(std::function<void(Communicator&)> fn, std::string name,
                    std::size_t elements = 0, int plan_task = -1,
                    const double* data = nullptr);

  /// Invoked by the pump after each operation completes (after its handle
  /// is signalled), with the operation's record.  The listener must not
  /// block; it is how the dataflow layer reacts to collective completions
  /// (it typically enqueues post-processing on the pool).  Install before
  /// submitting the operations it should observe.
  void set_completion_listener(std::function<void(const OpRecord&)> listener);

  /// Blocks until every operation submitted so far has completed.  Must not
  /// be called from a pool task.  Never throws — a failure is observable
  /// per-handle (wait()), via failed records, or through error().
  void wait_all();

  /// First failure the pump observed (nullptr while healthy).  Once set,
  /// every subsequently pumped operation fails fast without touching the
  /// transport — a dead peer must not hang the rest of the schedule.
  std::exception_ptr error() const {
    std::lock_guard lock(mutex_);
    return error_;
  }

  bool failed() const { return error() != nullptr; }

  /// Number of operations fully executed.
  std::size_t completed() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }

  /// Snapshot of execution records (call after wait_all for a stable view).
  std::vector<OpRecord> records() const;

  /// Seconds since engine start, on the clock the records use — lets
  /// callers place their own events (pass boundaries, drains) on the same
  /// timeline for overlap accounting.
  double now_s() const;

  int rank() const noexcept { return comm_.rank(); }
  int size() const noexcept { return comm_.size(); }

 private:
  struct Op {
    std::function<void(Communicator&)> fn;
    std::shared_ptr<CommHandle::State> state;
    std::string name;
    std::size_t elements = 0;
    double submit_s = 0.0;
    int plan_task = -1;
    const double* data = nullptr;
  };

  /// Runs queued ops FIFO until the queue empties, then retires itself;
  /// submit() schedules a new pump when none is active.
  void pump();

  Communicator& comm_;
  std::chrono::steady_clock::time_point epoch_;

  std::unique_ptr<exec::ThreadPool> owned_pool_;  ///< standalone engines
  exec::ThreadPool* pool_;

  mutable std::mutex mutex_;
  std::deque<Op> queue_;
  bool pumping_ = false;  ///< a pump task is scheduled or running
  std::exception_ptr error_;  ///< first pump failure; poisons later ops
  std::atomic<std::size_t> completed_{0};
  std::condition_variable drained_cv_;
  std::function<void(const OpRecord&)> listener_;

  mutable std::mutex records_mutex_;
  std::vector<OpRecord> records_;
};

}  // namespace spdkfac::comm
