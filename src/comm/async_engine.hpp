// Asynchronous background communication engine — the Horovod analogue.
//
// SPD-KFAC's pipelining (paper Section IV-A / V-A) relies on submitting
// all-reduce and broadcast operations asynchronously ("hvd.allreduce_async_",
// "hvd.broadcast_async_") so they execute on a background thread while the
// caller keeps computing the next layer's Kronecker factor.  This engine
// reproduces that execution model: each rank owns one engine; operations are
// queued and executed in submission order by a dedicated worker thread, and
// callers synchronize through CommHandle::wait().
//
// Correctness contract (same as Horovod after negotiation): every rank must
// submit the same sequence of collective operations with matching shapes.
// The SPD-KFAC optimizer guarantees this by deriving the schedule
// deterministically from the model structure on every rank.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/cluster.hpp"

namespace spdkfac::comm {

/// Completion handle for an asynchronously submitted operation.
class CommHandle {
 public:
  CommHandle() = default;

  bool valid() const noexcept { return state_ != nullptr; }

  /// True once the background thread finished the operation.
  bool done() const {
    return state_ != nullptr && state_->done.load(std::memory_order_acquire);
  }

  /// Blocks until the operation completes.  No-op for invalid handles.
  void wait() const {
    if (!state_) return;
    std::unique_lock lock(state_->mutex);
    state_->cv.wait(lock,
                    [s = state_.get()] { return s->done.load(); });
  }

 private:
  friend class AsyncCommEngine;
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> done{false};
  };
  std::shared_ptr<State> state_;
};

/// Wall-clock record of one executed operation (for overlap diagnostics and
/// the sched-plan equivalence suite).
struct OpRecord {
  std::string name;
  double submit_s = 0.0;  ///< seconds since engine start, at submission
  double start_s = 0.0;   ///< when the background thread began executing
  double end_s = 0.0;     ///< when it finished
  std::size_t elements = 0;
  /// Id of the sched::IterationPlan task this operation executes, or -1 for
  /// out-of-plan traffic (e.g. the factor-time profile sync).
  int plan_task = -1;
};

/// Per-rank background communication thread.
///
/// The referenced Communicator is used exclusively by the engine thread once
/// the engine is constructed; callers must route *all* collectives through
/// the engine (submit + wait models a synchronous call) so the channel
/// message streams of different operations never interleave.
class AsyncCommEngine {
 public:
  explicit AsyncCommEngine(Communicator& comm);

  /// Drains the queue and joins the worker thread.
  ~AsyncCommEngine();

  AsyncCommEngine(const AsyncCommEngine&) = delete;
  AsyncCommEngine& operator=(const AsyncCommEngine&) = delete;

  /// Queues an in-place all-reduce over `data`.  The caller must keep the
  /// underlying buffer alive and untouched until the handle completes.
  /// `algo` picks the collective algorithm (kAuto: per size/topology); all
  /// ranks must pass the same algorithm for the same operation.
  /// `plan_task` tags the execution record with the schedule-plan task the
  /// operation realizes (-1: out-of-plan traffic).
  CommHandle all_reduce_async(std::span<double> data,
                              ReduceOp op = ReduceOp::kAverage,
                              std::string name = "allreduce",
                              AllReduceAlgo algo = AllReduceAlgo::kRing,
                              int plan_task = -1);

  /// Queues an in-place broadcast from `root`.
  CommHandle broadcast_async(std::span<double> data, int root,
                             std::string name = "broadcast",
                             int plan_task = -1);

  /// Queues an arbitrary operation on the engine thread (escape hatch used
  /// by tests and by fused multi-tensor operations).
  CommHandle submit(std::function<void(Communicator&)> fn, std::string name,
                    std::size_t elements = 0, int plan_task = -1);

  /// Blocks until every operation submitted so far has completed.
  void wait_all();

  /// Number of operations fully executed.
  std::size_t completed() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }

  /// Snapshot of execution records (call after wait_all for a stable view).
  std::vector<OpRecord> records() const;

  int rank() const noexcept { return comm_.rank(); }
  int size() const noexcept { return comm_.size(); }

 private:
  struct Op {
    std::function<void(Communicator&)> fn;
    std::shared_ptr<CommHandle::State> state;
    std::string name;
    std::size_t elements = 0;
    double submit_s = 0.0;
    int plan_task = -1;
  };

  void worker_loop();
  double now_s() const;

  Communicator& comm_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Op> queue_;
  bool stopping_ = false;
  std::atomic<std::size_t> submitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::condition_variable drained_cv_;

  mutable std::mutex records_mutex_;
  std::vector<OpRecord> records_;

  std::thread worker_;
};

}  // namespace spdkfac::comm
