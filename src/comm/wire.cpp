#include "comm/wire.hpp"

#include <cstring>

namespace spdkfac::comm::wire {

namespace {

void put_u16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v & 0xFF);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kBadMagic:
      return "bad magic";
    case DecodeStatus::kBadVersion:
      return "bad version";
    case DecodeStatus::kOversize:
      return "oversize payload";
  }
  return "?";
}

void encode_header(const FrameHeader& header, std::span<unsigned char> out) {
  put_u32(out.data(), kMagic);
  put_u16(out.data() + 4, header.version);
  put_u16(out.data() + 6, header.tag);
  put_u32(out.data() + 8, static_cast<std::uint32_t>(header.src));
  put_u32(out.data() + 12, static_cast<std::uint32_t>(header.plan_task));
  put_u64(out.data() + 16, header.elements);
  put_u16(out.data() + 24, header.codec);
  for (int i = 26; i < 32; ++i) out[static_cast<std::size_t>(i)] = 0;
}

DecodeStatus decode_header(std::span<const unsigned char> in,
                           FrameHeader& out) {
  if (get_u32(in.data()) != kMagic) return DecodeStatus::kBadMagic;
  out.version = get_u16(in.data() + 4);
  if (out.version != kVersion) return DecodeStatus::kBadVersion;
  out.tag = get_u16(in.data() + 6);
  out.src = static_cast<std::int32_t>(get_u32(in.data() + 8));
  out.plan_task = static_cast<std::int32_t>(get_u32(in.data() + 12));
  out.elements = get_u64(in.data() + 16);
  if (out.elements > kMaxElements) return DecodeStatus::kOversize;
  out.codec = get_u16(in.data() + 24);
  return DecodeStatus::kOk;
}

std::vector<unsigned char> encode_frame(const FrameHeader& header,
                                        std::span<const double> payload) {
  std::vector<unsigned char> frame(kHeaderBytes + payload.size_bytes());
  encode_header(header, frame);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(),
                payload.size_bytes());
  }
  return frame;
}

bool FrameParser::feed(std::span<const unsigned char> bytes) {
  if (corrupt()) return false;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  extract_frames();
  return !corrupt();
}

Frame FrameParser::pop_frame() {
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void FrameParser::extract_frames() {
  for (;;) {
    if (buf_.size() - cursor_ < kHeaderBytes) break;
    FrameHeader header;
    const DecodeStatus status = decode_header(
        std::span<const unsigned char>(buf_).subspan(cursor_, kHeaderBytes),
        header);
    if (status != DecodeStatus::kOk) {
      status_ = status;
      buf_.clear();
      cursor_ = 0;
      return;
    }
    const std::size_t payload_bytes =
        static_cast<std::size_t>(header.elements) * sizeof(double);
    if (buf_.size() - cursor_ < kHeaderBytes + payload_bytes) break;
    Frame frame;
    frame.header = header;
    frame.payload.resize(static_cast<std::size_t>(header.elements));
    if (payload_bytes > 0) {
      std::memcpy(frame.payload.data(), buf_.data() + cursor_ + kHeaderBytes,
                  payload_bytes);
    }
    frames_.push_back(std::move(frame));
    cursor_ += kHeaderBytes + payload_bytes;
  }
  // Compact once the consumed prefix dominates, so the buffer does not grow
  // without bound across a long-lived connection.
  if (cursor_ > 0 && cursor_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    cursor_ = 0;
  }
}

}  // namespace spdkfac::comm::wire
