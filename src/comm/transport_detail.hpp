// Internals shared by the out-of-process transport backends (not part of
// the public comm API).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "exec/thread_pool.hpp"

namespace spdkfac::comm::detail {

/// Per-peer send queues pumped on a dedicated exec worker — what makes
/// Transport::send non-blocking over a bounded carrier (socket buffer, shm
/// ring).  send() enqueues an encoded frame and returns; a flush task per
/// peer drains that peer's queue FIFO through `write` (which may block on
/// the carrier).  The single pump worker serializes writes across peers,
/// mirroring the AsyncCommEngine's one-pump discipline.
///
/// A write failure (peer died, carrier torn) is captured and rethrown from
/// the next send()/flush() — pool tasks must not throw.
class FrameSender {
 public:
  /// `write(dst, bytes)` delivers one encoded frame to `dst`, blocking as
  /// needed; it must be callable from the pump worker.
  FrameSender(int peers,
              std::function<void(int, std::span<const unsigned char>)> write)
      : peers_(static_cast<std::size_t>(peers)),
        write_(std::move(write)),
        pool_(1) {}

  /// Drains every queue (or surfaces a captured write error).
  ~FrameSender() {
    try {
      flush();
    } catch (...) {
      // Destructor context: the error was already observable via send().
    }
  }

  void send(int dst, std::vector<unsigned char> frame) {
    bool schedule = false;
    {
      std::lock_guard lock(mutex_);
      if (error_) std::rethrow_exception(error_);
      Peer& peer = peers_[static_cast<std::size_t>(dst)];
      peer.queue.push_back(std::move(frame));
      if (!peer.pumping) {
        peer.pumping = true;
        schedule = true;
      }
    }
    if (schedule) {
      pool_.submit([this, dst] { pump(dst); });
    }
  }

  /// Blocks until every enqueued frame has been written; rethrows the
  /// first write error.
  void flush() {
    std::unique_lock lock(mutex_);
    drained_.wait(lock, [this] {
      if (error_) return true;
      for (const Peer& p : peers_) {
        if (!p.queue.empty() || p.pumping) return false;
      }
      return true;
    });
    if (error_) std::rethrow_exception(error_);
  }

 private:
  struct Peer {
    std::deque<std::vector<unsigned char>> queue;
    bool pumping = false;  ///< a flush task for this peer is scheduled
  };

  void pump(int dst) {
    Peer& peer = peers_[static_cast<std::size_t>(dst)];
    for (;;) {
      std::vector<unsigned char> frame;
      {
        std::lock_guard lock(mutex_);
        if (peer.queue.empty() || error_) {
          peer.pumping = false;
          drained_.notify_all();
          return;
        }
        frame = std::move(peer.queue.front());
        peer.queue.pop_front();
      }
      try {
        write_(dst, frame);
      } catch (...) {
        std::lock_guard lock(mutex_);
        error_ = std::current_exception();
        peer.queue.clear();
        peer.pumping = false;
        drained_.notify_all();
        return;
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable drained_;
  std::vector<Peer> peers_;
  std::function<void(int, std::span<const unsigned char>)> write_;
  std::exception_ptr error_;
  exec::ThreadPool pool_;  ///< last member: joins before queues die
};

}  // namespace spdkfac::comm::detail
