// Fault model of the communication layer: structured failures and a
// deterministic fault-injection seam.
//
// PR 6 put the cluster on real multi-process transports; this header is
// what makes a *dying* rank a first-class, testable event instead of an
// eternal hang.  Two pieces:
//
//   RankFailure    the structured exception every deadline-aware blocking
//                  primitive throws when a peer goes silent: who failed,
//                  which operation observed it, how it was detected
//                  (timeout / closed stream / a peer's failure notice /
//                  injection), and — once the async engine annotates it —
//                  which collective and sched-plan task was in flight.
//
//   FaultInjector  a deterministic, seedable trigger that fires exactly
//                  once at a chosen (rank, op, occurrence) and decides the
//                  failure mode: kDrop (the op silently does nothing),
//                  kHang (the rank stalls for hang_s, then dies), kKill
//                  (the rank dies on the spot — SIGKILL for the
//                  process-per-rank backends, an exception for threads).
//                  with_fault_injection() wraps any Transport with the
//                  seam, so the same spec exercises all three backends.
//
// The conformance matrix in tests/comm/test_fault_injection.cpp drives
// backend x {drop, hang, kill} x {send, barrier, fused all-reduce} through
// this seam and asserts every survivor surfaces a RankFailure naming the
// dead rank within the configured deadline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace spdkfac::comm {

class Transport;

/// How a rank's death was observed.
enum class FailureCause {
  kTimeout,     ///< no frame (data or heartbeat) within the deadline
  kPeerClosed,  ///< the byte stream ended mid-protocol (socket EOF)
  kPeerNotice,  ///< another rank detected the failure and broadcast it
  kInjected,    ///< the FaultInjector fired on this rank
};

const char* to_string(FailureCause cause) noexcept;

/// A peer rank is gone (or this rank was declared gone): the structured
/// failure every survivor of a dead rank receives instead of a hang.
/// `op` names the blocking primitive that observed the failure ("recv",
/// "send", "barrier"); the async engine rewrites it to the collective's
/// label and fills `plan_task` when the failure surfaced inside a
/// scheduled operation.
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int failed_rank, std::string op, FailureCause cause,
              int observer_rank, double deadline_s = 0.0);

  int failed_rank() const noexcept { return failed_rank_; }
  int observer_rank() const noexcept { return observer_rank_; }
  FailureCause cause() const noexcept { return cause_; }
  const std::string& op() const noexcept { return op_; }
  int plan_task() const noexcept { return plan_task_; }
  double deadline_s() const noexcept { return deadline_s_; }

  /// Engine-side annotation: replaces the primitive-level op name with the
  /// collective's label and attaches the sched-plan task it realizes.
  /// Rewrites what() accordingly.
  void set_context(const std::string& op, int plan_task);

  const char* what() const noexcept override { return message_.c_str(); }

 private:
  void rebuild_message();

  int failed_rank_;
  int observer_rank_;
  FailureCause cause_;
  std::string op_;
  int plan_task_ = -1;
  double deadline_s_;
  std::string message_;
};

/// Thrown on the *victim* rank when the injector fires with kHang or kKill
/// on the in-process backend (process backends raise SIGKILL instead).
class FaultInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// What the injector does when it fires.
enum class FaultAction {
  kNone,  ///< injection disabled
  kDrop,  ///< the matched op silently does nothing (lost message)
  kHang,  ///< stall for hang_s, then die — a silent rank, detectable only
          ///< by deadline
  kKill,  ///< die immediately (SIGKILL / FaultInjected)
};

/// Which transport operations the trigger counts.
enum class FaultOp {
  kAny,
  kSend,
  kBarrier,
};

/// Deterministic one-shot fault trigger: fires on the (after_ops + 1)-th
/// operation matching `op` on rank `rank`.  With a nonzero `seed` the
/// occurrence index is derived from the seed instead (uniform over
/// [0, seed_range) via splitmix64), so fuzz harnesses can vary *where* the
/// fault lands while every run with the same seed is identical.
struct FaultSpec {
  int rank = -1;  ///< victim rank; < 0 disables injection entirely
  FaultOp op = FaultOp::kAny;
  FaultAction action = FaultAction::kNone;
  std::size_t after_ops = 0;
  double hang_s = 2.0;          ///< kHang: silence duration before dying
  std::uint64_t seed = 0;       ///< nonzero: derive after_ops from the seed
  std::size_t seed_range = 8;   ///< seeded occurrence drawn from [0, range)

  bool enabled_for(int r) const noexcept {
    return action != FaultAction::kNone && rank == r;
  }
};

/// The counting trigger behind the decorator (exposed for tests).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  /// Counts one operation of class `op`; returns the configured action on
  /// the trigger occurrence (exactly once), kNone otherwise.
  FaultAction decide(FaultOp op) noexcept;

  /// The resolved 0-based occurrence index the trigger fires at.
  std::size_t trigger_op() const noexcept { return trigger_; }

  const FaultSpec& spec() const noexcept { return spec_; }

 private:
  FaultSpec spec_;
  std::size_t trigger_ = 0;
  std::size_t count_ = 0;
  bool fired_ = false;
};

/// Wraps `inner` with the fault-injection seam: matched operations are
/// dropped, stalled or turned into the rank's death per `spec`; everything
/// else forwards untouched (including timeouts and heartbeats).  The
/// launcher installs this on the victim rank's transport when
/// LaunchOptions::fault selects one.
std::unique_ptr<Transport> with_fault_injection(std::unique_ptr<Transport> inner,
                                                const FaultSpec& spec);

}  // namespace spdkfac::comm
