// The daemon side of the ctl socket: a nonblocking Unix-domain listener
// whose connections are serviced *synchronously* from whatever thread
// calls poll() — in spdkfacd that is rank 0's training thread, between
// steps.  Single-threaded by design: command handlers read optimizer state
// with no locking, and (the determinism contract) a ctl read can never
// interleave with a step, so observing the daemon cannot perturb training.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/wire.hpp"
#include "ctl/protocol.hpp"

namespace spdkfac::ctl {

class CtlServer {
 public:
  /// Handler for one command line; the returned Response is framed back to
  /// the client (ok -> kCtlOkTag, !ok -> kCtlErrTag).  A throwing handler
  /// is converted into an error response carrying e.what().
  using Handler = std::function<Response(const std::string& command)>;

  /// Binds and listens on `path` (unlinking a stale socket a crashed
  /// daemon left behind).  Throws std::invalid_argument when the path
  /// exceeds sun_path, std::runtime_error on socket errors.
  explicit CtlServer(std::string path);
  ~CtlServer();

  CtlServer(const CtlServer&) = delete;
  CtlServer& operator=(const CtlServer&) = delete;

  /// Accepts pending connections, reads available bytes, runs `handler`
  /// for every complete request frame and writes the replies — all on the
  /// calling thread.  Waits at most `timeout_ms` for activity (0: a pure
  /// nonblocking drain).  Returns the number of requests handled.
  std::size_t handle(const Handler& handler, int timeout_ms);

  const std::string& path() const noexcept { return path_; }

 private:
  struct Connection {
    int fd = -1;
    comm::wire::FrameParser parser;
    bool dead = false;
  };

  void accept_pending();
  void service(Connection& conn, const Handler& handler,
               std::size_t& handled);

  std::string path_;
  int listen_fd_ = -1;
  std::vector<Connection> conns_;
};

}  // namespace spdkfac::ctl
