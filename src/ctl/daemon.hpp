// spdkfacd's engine room: a distributed K-FAC training service wrapping
// DistKfacOptimizer behind a ctl Unix-domain socket (ROADMAP item 4,
// modeled on slash2's ctlsvr/slictl split).
//
// Thread ownership — the determinism story:
//
//   * The daemon launches `world` in-process ranks (comm::Cluster), each
//     training the same small-CNN replica the bench harness uses.
//   * Rank 0's training thread ALSO owns the ctl socket: between steps it
//     polls for connections and executes every command synchronously.
//     Commands therefore only ever observe the optimizer at a step
//     boundary, with no concurrent reader — reads (status/profile/plan/
//     cache/metrics/trace) cannot perturb training, which is what the
//     ctl-hammering determinism test locks down bitwise.
//   * Mutations (set/replan) and step/shutdown requests are recorded into
//     a Directive and published to the worker ranks through a
//     mutex+condvar log; every rank applies the same directives in the
//     same order at the same step boundaries, so plan-shaping state stays
//     rank-identical (the cluster's collective-order contract).
//
// Commands: status | profile | plan | cache | replan | set k=v | step [n]
//           | metrics | trace | shutdown
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "tensor/matrix.hpp"

namespace spdkfac::ctl {

struct DaemonOptions {
  /// Ctl socket path (validated against sun_path).  Required.
  std::string socket_path;
  int world = 2;

  /// Steps queued at startup (more can be queued live via `step n`).
  std::size_t auto_steps = 0;
  /// true: keep serving ctl after the queue drains, until `shutdown` (the
  /// daemon mode).  false: exit once the queue drains (batch mode; tests).
  bool run_until_shutdown = true;

  /// Optimizer configuration; mutable at runtime through `set`.
  core::DistKfacOptions optimizer;

  // Model/data shape — the bench harness's small-CNN defaults, so daemon
  // runs are comparable with bench_runtime and reproducible from seeds.
  std::size_t in_channels = 1;
  std::size_t image_hw = 12;
  std::size_t conv1 = 8;
  std::size_t conv2 = 16;
  std::size_t classes = 5;
  std::size_t batch = 8;
  std::uint64_t init_seed = 99;  ///< shared: identical replicas
  std::uint64_t data_seed = 3;
  double noise = 0.0;
  bool hooked = true;  ///< in-pass submission (Fig. 6) vs post-hoc
};

class Daemon {
 public:
  /// Validates the options (socket path, optimizer settings, world >= 1);
  /// throws std::invalid_argument on any problem.
  explicit Daemon(DaemonOptions options);

  /// Runs the cluster until shutdown; blocks the calling thread.  The ctl
  /// socket exists for the whole run.  Rethrows a rank's fatal error.
  void run();

  /// Thread-safe external stop (SIGINT handler, tests): the next ctl poll
  /// tick turns it into a shutdown directive.
  void request_shutdown() noexcept { external_shutdown_.store(true); }

  /// Steps completed by rank 0 (thread-safe; live during run()).
  std::size_t steps_completed() const noexcept {
    return steps_done_.load();
  }

  /// Rank 0's final layer weights — valid after run() returns; the
  /// determinism suite compares these bitwise across daemon runs.
  const std::vector<tensor::Matrix>& rank0_weights() const noexcept {
    return rank0_weights_;
  }

 private:
  /// One synchronized instruction from rank 0 to every worker.
  struct Directive {
    std::vector<std::pair<std::string, double>> sets;
    bool replan = false;
    bool step = false;
    bool shutdown = false;
  };

  void rank_main(comm::Communicator& comm);
  void worker_loop(comm::Communicator& comm,
                   core::DistKfacOptimizer& optimizer,
                   const std::function<void()>& train_one_step);

  void publish(Directive directive);
  Directive await_directive(int rank);

  DaemonOptions opts_;

  // Directive log: rank 0 appends, workers consume at their own cursor.
  // Consumed-by-all prefixes are trimmed, so memory stays bounded by the
  // worst rank skew (one step) instead of growing with the run.
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Directive> log_;
  std::uint64_t log_base_ = 0;  ///< index of log_.front()
  std::vector<std::uint64_t> cursor_;  ///< per worker rank, absolute

  std::atomic<bool> external_shutdown_{false};
  std::atomic<std::size_t> steps_done_{0};
  std::vector<tensor::Matrix> rank0_weights_;
};

}  // namespace spdkfac::ctl
