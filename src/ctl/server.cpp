#include "ctl/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "comm/transport.hpp"

namespace spdkfac::ctl {

namespace {

sockaddr_un ctl_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  comm::validate_socket_path(path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Blocking-with-poll write of the whole reply to a nonblocking fd.
bool write_reply(int fd, const std::vector<unsigned char>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // client went away mid-reply
  }
  return true;
}

}  // namespace

CtlServer::CtlServer(std::string path) : path_(std::move(path)) {
  const sockaddr_un addr = ctl_address(path_);
  // A previous daemon instance that crashed leaves the socket inode
  // behind; bind() would fail with EADDRINUSE even though nobody listens.
  ::unlink(path_.c_str());
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("ctl: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ctl: bind(" + path_ +
                             ") failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    throw std::runtime_error("ctl: listen(" + path_ +
                             ") failed: " + std::strerror(err));
  }
}

CtlServer::~CtlServer() {
  for (Connection& conn : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void CtlServer::accept_pending() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN: drained; other errors: drop silently
    conns_.push_back(Connection{fd, {}, false});
  }
}

void CtlServer::service(Connection& conn, const Handler& handler,
                        std::size_t& handled) {
  unsigned char buf[4096];
  for (;;) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      if (!conn.parser.feed({buf, static_cast<std::size_t>(n)})) {
        conn.dead = true;  // corrupt stream: a non-ctl client; drop it
        return;
      }
      continue;
    }
    if (n == 0) {
      conn.dead = true;  // orderly shutdown from the client
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn.dead = true;
    return;
  }
  while (conn.parser.has_frame()) {
    const comm::wire::Frame frame = conn.parser.pop_frame();
    if (frame.header.tag != comm::wire::kCtlRequestTag) continue;
    Response resp;
    try {
      resp = handler(unpack_text(frame.payload));
    } catch (const std::exception& e) {
      resp = Response{false, e.what()};
    }
    ++handled;
    const auto reply = encode_text_frame(
        resp.ok ? comm::wire::kCtlOkTag : comm::wire::kCtlErrTag, resp.body);
    if (!conn.dead && !write_reply(conn.fd, reply)) conn.dead = true;
  }
}

std::size_t CtlServer::handle(const Handler& handler, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const Connection& conn : conns_) {
    fds.push_back(pollfd{conn.fd, POLLIN, 0});
  }
  const std::size_t polled = conns_.size();  // accept_pending grows conns_
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  std::size_t handled = 0;
  if (ready > 0) {
    if ((fds[0].revents & POLLIN) != 0) accept_pending();
    for (std::size_t i = 0; i < polled; ++i) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        service(conns_[i], handler, handled);
      }
    }
  }
  std::erase_if(conns_, [](Connection& conn) {
    if (!conn.dead) return false;
    ::close(conn.fd);
    return true;
  });
  return handled;
}

}  // namespace spdkfac::ctl
