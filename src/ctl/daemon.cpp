#include "ctl/daemon.hpp"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <functional>
#include <stdexcept>

#include "comm/transport.hpp"
#include "ctl/metrics.hpp"
#include "ctl/server.hpp"
#include "ctl/trace_recorder.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "sched/serialize.hpp"
#include "tensor/random.hpp"
#include "util/json.hpp"

namespace spdkfac::ctl {

namespace {

std::size_t plan_wire_bytes(const sched::IterationPlan& plan) {
  std::size_t bytes = 0;
  for (const sched::Task& task : plan.tasks) {
    if (task.is_collective()) bytes += task.wire_elements * sizeof(double);
  }
  return bytes;
}

std::size_t plan_raw_bytes(const sched::IterationPlan& plan) {
  std::size_t bytes = 0;
  for (const sched::Task& task : plan.tasks) {
    if (task.is_collective()) bytes += task.elements * sizeof(double);
  }
  return bytes;
}

std::string json_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += (i == 0 ? "" : ", ") + util::json_number(values[i]);
  }
  return out + "]";
}

/// Parses the `set` argument "name=value"; throws std::invalid_argument on
/// anything else (including a value strtod does not fully consume).
std::pair<std::string, double> parse_assignment(const std::string& arg) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
    throw std::invalid_argument("set expects name=value, got '" + arg + "'");
  }
  const std::string name = arg.substr(0, eq);
  const std::string text = arg.substr(eq + 1);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("set " + name + ": '" + text +
                                "' is not a number");
  }
  return {name, value};
}

/// Splits a command line on single spaces into [verb, args...].
std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ') ++end;
    if (end > pos) words.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return words;
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : opts_(std::move(options)) {
  if (opts_.world < 1) {
    throw std::invalid_argument("Daemon: world must be >= 1");
  }
  comm::validate_socket_path(opts_.socket_path);
  opts_.optimizer.validate();
  if (opts_.optimizer.transport != comm::TransportKind::kInProcess) {
    throw std::invalid_argument(
        "Daemon: ranks are in-process threads (the ctl plane shares rank "
        "0's address space); transport must be inproc");
  }
  cursor_.assign(static_cast<std::size_t>(opts_.world), 0);
}

void Daemon::run() {
  comm::Cluster::launch(opts_.world,
                        [this](comm::Communicator& comm) { rank_main(comm); });
}

void Daemon::rank_main(comm::Communicator& comm) {
  tensor::Rng init(opts_.init_seed);
  nn::Sequential model =
      nn::make_small_cnn(opts_.in_channels, opts_.image_hw, opts_.conv1,
                         opts_.conv2, opts_.classes, init);
  auto layers = model.preconditioned_layers();
  core::DistKfacOptimizer optimizer(layers, comm, opts_.optimizer);
  nn::SyntheticClassification data(opts_.classes, opts_.in_channels,
                                   opts_.image_hw, opts_.data_seed,
                                   opts_.noise);
  tensor::Rng shard(100 + static_cast<std::uint64_t>(comm.rank()));
  nn::SoftmaxCrossEntropy loss;

  double last_loss = 0.0;
  const std::function<void()> train_one_step = [&] {
    nn::Batch batch = data.sample(opts_.batch, shard);
    if (opts_.hooked) {
      const nn::PassHooks hooks = optimizer.pass_hooks();
      last_loss =
          loss.forward(model.forward(batch.inputs, hooks), batch.labels);
      model.backward(loss.backward(), hooks);
    } else {
      last_loss = loss.forward(model.forward(batch.inputs), batch.labels);
      model.backward(loss.backward());
    }
    optimizer.step();
  };

  if (comm.rank() != 0) {
    worker_loop(comm, optimizer, train_one_step);
    return;
  }

  // ----- rank 0: ctl service + training, one thread ------------------------
  CtlServer server(opts_.socket_path);
  TraceRecorder recorder;
  optimizer.set_task_listener(
      [&recorder](const sched::Task& task, double start_s, double end_s) {
        recorder.add(task.label.empty() ? to_string(task.kind) : task.label,
                     TraceRecorder::Lane::kCompute, start_s, end_s);
      });

  std::size_t budget = opts_.auto_steps;
  bool shutdown_req = false;
  std::string failure;  ///< non-empty once a step threw; stepping stops
  Directive pending;
  std::size_t records_harvested = 0;
  std::size_t ctl_requests = 0;
  std::size_t rank_failures = 0;
  double last_step_s = 0.0, step_s_sum = 0.0;

  // Options as the *next* step will see them: the live options plus every
  // queued-but-unpublished set — what `set` validates against and what
  // `status` reports, so a set is visible the moment it is accepted.
  const auto effective_options = [&] {
    core::DistKfacOptions eff = optimizer.options();
    for (const auto& [name, value] : pending.sets) {
      eff = core::with_tunable(eff, name, value);
    }
    return eff;
  };

  const auto status_json = [&] {
    const core::DistKfacOptions eff = effective_options();
    std::string out = "{";
    out += "\"step\": " + std::to_string(optimizer.steps());
    out += ", \"replan_epoch\": " + std::to_string(optimizer.replan_count());
    out += ", \"strategy\": " +
           util::json_string(core::to_string(optimizer.strategy()));
    out += ", \"world\": " + std::to_string(comm.size());
    out += ", \"pending_steps\": " + std::to_string(budget);
    out += ", \"last_loss\": " + util::json_number(last_loss);
    out += ", \"lr\": " + util::json_number(eff.lr);
    out += ", \"damping\": " + util::json_number(eff.damping);
    out += ", \"stat_decay\": " + util::json_number(eff.stat_decay);
    out += ", \"kl_clip\": " + util::json_number(eff.kl_clip);
    out += ", \"factor_update_freq\": " +
           std::to_string(eff.factor_update_freq);
    out += ", \"inverse_update_freq\": " +
           std::to_string(eff.inverse_update_freq);
    out += ", \"replan_interval\": " + std::to_string(eff.replan_interval);
    out += ", \"plan_tasks\": " + std::to_string(optimizer.plan().tasks.size());
    out +=
        ", \"plan_collectives\": " +
        std::to_string(optimizer.plan().num_collectives());
    out += ", \"failed\": ";
    out += failure.empty() ? "false" : "true";
    if (!failure.empty()) {
      out += ", \"failure\": " + util::json_string(failure);
    }
    out += "}";
    return out;
  };

  const auto profile_json = [&] {
    const perf::ProfileSnapshot snap = optimizer.profiler().snapshot();
    std::vector<double> inverse;
    for (std::size_t t = 0; t < 2 * snap.layers(); ++t) {
      inverse.push_back(optimizer.profiler().inverse_seconds(t));
    }
    std::string out = "{";
    out += "\"layers\": " + std::to_string(snap.layers());
    out += ", \"factor_a_s\": " + json_array(snap.factor_a);
    out += ", \"factor_g_s\": " + json_array(snap.factor_g);
    out += ", \"forward_s\": " + json_array(snap.forward);
    out += ", \"backward_s\": " + json_array(snap.backward);
    out += ", \"inverse_s\": " + json_array(inverse);
    out += ", \"collective_ops\": " +
           std::to_string(optimizer.profiler().collective_ops());
    out += ", \"collective_seconds\": " +
           util::json_number(optimizer.profiler().collective_seconds());
    out += ", \"collective_elements\": " +
           std::to_string(optimizer.profiler().collective_elements());
    out += "}";
    return out;
  };

  const auto cache_json = [&] {
    const sched::PlanCache& cache = optimizer.plan_cache();
    const double lookups = static_cast<double>(cache.hits() + cache.misses());
    std::string out = "{";
    out += "\"hits\": " + std::to_string(cache.hits());
    out += ", \"misses\": " + std::to_string(cache.misses());
    out += ", \"entries\": " + std::to_string(cache.size());
    out += ", \"capacity\": " + std::to_string(cache.capacity());
    out += ", \"hit_rate\": " +
           util::json_number(lookups > 0.0
                                 ? static_cast<double>(cache.hits()) / lookups
                                 : 0.0);
    out += "}";
    return out;
  };

  const auto metrics_text = [&] {
    using Type = Metric::Type;
    const std::size_t steps = optimizer.steps();
    std::vector<Metric> ms{
        {"spdkfac_steps_total", "Optimizer steps completed", Type::kCounter,
         static_cast<double>(steps)},
        {"spdkfac_pending_steps", "Steps queued but not yet run",
         Type::kGauge, static_cast<double>(budget)},
        {"spdkfac_world_size", "Ranks in the training cluster", Type::kGauge,
         static_cast<double>(comm.size())},
        {"spdkfac_replans_total", "Planning-profile refreshes",
         Type::kCounter, static_cast<double>(optimizer.replan_count())},
        {"spdkfac_last_iteration_seconds", "Wall time of the last step",
         Type::kGauge, last_step_s},
        {"spdkfac_iteration_seconds_sum", "Wall time across all steps",
         Type::kCounter, step_s_sum},
        {"spdkfac_iteration_seconds_count", "Steps timed", Type::kCounter,
         static_cast<double>(steps)},
        {"spdkfac_wire_bytes_per_iteration",
         "Post-codec collective payload bytes of one step's plan",
         Type::kGauge, static_cast<double>(plan_wire_bytes(optimizer.plan()))},
        {"spdkfac_raw_bytes_per_iteration",
         "Pre-codec collective payload bytes of one step's plan",
         Type::kGauge, static_cast<double>(plan_raw_bytes(optimizer.plan()))},
        {"spdkfac_arena_bytes_saved_per_iteration",
         "Bytes per step the zero-copy arena stopped copying or zeroing",
         Type::kGauge,
         static_cast<double>(optimizer.arena_bytes_saved_per_step())},
        {"spdkfac_plan_cache_hits_total", "Plan cache hits", Type::kCounter,
         static_cast<double>(optimizer.plan_cache().hits())},
        {"spdkfac_plan_cache_misses_total", "Plan cache misses",
         Type::kCounter, static_cast<double>(optimizer.plan_cache().misses())},
        {"spdkfac_plan_cache_entries", "Plans currently cached", Type::kGauge,
         static_cast<double>(optimizer.plan_cache().size())},
        {"spdkfac_collective_ops_total",
         "Collectives executed by the async engine", Type::kCounter,
         static_cast<double>(optimizer.profiler().collective_ops())},
        {"spdkfac_collective_seconds_total",
         "Engine execution time across all collectives", Type::kCounter,
         optimizer.profiler().collective_seconds()},
        {"spdkfac_heartbeats_total",
         "Liveness ping rounds emitted by this rank's transport",
         Type::kCounter,
         static_cast<double>(comm.transport().heartbeats_sent())},
        {"spdkfac_rank_failures_total",
         "Steps aborted by a rank failure", Type::kCounter,
         static_cast<double>(rank_failures)},
        {"spdkfac_ctl_requests_total", "Ctl commands served", Type::kCounter,
         static_cast<double>(ctl_requests)},
    };
    return render_prometheus(ms);
  };

  const CtlServer::Handler handler = [&](const std::string& line) {
    ++ctl_requests;
    const std::vector<std::string> words = split_words(line);
    const std::string verb = words.empty() ? "" : words[0];
    if (verb == "status") return Response{true, status_json()};
    if (verb == "profile") return Response{true, profile_json()};
    if (verb == "plan") {
      return Response{true, sched::plan_to_text(optimizer.plan())};
    }
    if (verb == "cache") return Response{true, cache_json()};
    if (verb == "metrics") return Response{true, metrics_text()};
    if (verb == "trace") {
      return Response{true, recorder.to_chrome_trace("spdkfacd")};
    }
    if (verb == "replan") {
      pending.replan = true;
      return Response{true, "replan armed for the next factor step"};
    }
    if (verb == "set") {
      if (words.size() != 2) {
        return Response{false, "usage: set <tunable>=<value>"};
      }
      const auto [name, value] = parse_assignment(words[1]);
      // Validate against the effective options; with_tunable throws (and
      // nothing is queued) on an unknown name or a rejected value.
      core::with_tunable(effective_options(), name, value);
      pending.sets.emplace_back(name, value);
      return Response{true,
                      name + " = " + util::format_double(value) +
                          " (applies from the next step)"};
    }
    if (verb == "step") {
      if (!failure.empty()) {
        return Response{false, "daemon is failed: " + failure};
      }
      std::size_t n = 1;
      if (words.size() == 2) {
        const std::size_t parsed = std::strtoul(words[1].c_str(), nullptr, 10);
        if (parsed == 0) {
          return Response{false, "usage: step [count >= 1]"};
        }
        n = parsed;
      } else if (words.size() > 2) {
        return Response{false, "usage: step [count >= 1]"};
      }
      budget += n;
      return Response{true,
                      "queued " + std::to_string(n) + " step(s), " +
                          std::to_string(budget) + " pending"};
    }
    if (verb == "shutdown") {
      shutdown_req = true;
      return Response{true, "shutting down"};
    }
    return Response{false,
                    "unknown command '" + verb +
                        "' (expected status, profile, plan, cache, metrics, "
                        "trace, replan, set, step or shutdown)"};
  };

  for (;;) {
    // Idle (nothing queued): block in poll ticks so a quiet daemon costs
    // ~nothing.  Steps queued: a pure drain, then train.
    const int wait_ms = (budget == 0 && !shutdown_req) ? 50 : 0;
    server.handle(handler, wait_ms);
    if (external_shutdown_.load()) shutdown_req = true;
    if (!opts_.run_until_shutdown && budget == 0) shutdown_req = true;

    const bool step_now = budget > 0 && failure.empty() && !shutdown_req;
    if (!step_now && !shutdown_req && pending.sets.empty() &&
        !pending.replan) {
      continue;  // nothing to publish; keep serving
    }

    Directive directive = std::exchange(pending, Directive{});
    directive.step = step_now;
    directive.shutdown = shutdown_req;
    publish(directive);
    for (const auto& [name, value] : directive.sets) {
      optimizer.set_tunable(name, value);
    }
    if (directive.replan) optimizer.force_replan();
    if (directive.shutdown) break;
    if (!directive.step) continue;

    const auto t0 = std::chrono::steady_clock::now();
    try {
      train_one_step();
    } catch (const std::exception& e) {
      failure = e.what();
      ++rank_failures;
      budget = 0;
      continue;  // keep the ctl plane alive so `status` can report it
    }
    last_step_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    step_s_sum += last_step_s;
    --budget;
    steps_done_.store(optimizer.steps());

    // Stitch the step's collectives into the trace (compute intervals
    // arrived live through the task listener).
    const std::vector<comm::OpRecord> records = optimizer.comm_records();
    for (; records_harvested < records.size(); ++records_harvested) {
      const comm::OpRecord& rec = records[records_harvested];
      if (rec.failed) continue;
      recorder.add(rec.name, TraceRecorder::Lane::kComm, rec.start_s,
                   rec.end_s);
    }
  }

  rank0_weights_.clear();
  for (nn::PreconditionedLayer* layer : layers) {
    rank0_weights_.push_back(layer->weight());
  }
}

void Daemon::worker_loop(comm::Communicator& comm,
                         core::DistKfacOptimizer& optimizer,
                         const std::function<void()>& train_one_step) {
  for (;;) {
    const Directive directive = await_directive(comm.rank());
    for (const auto& [name, value] : directive.sets) {
      optimizer.set_tunable(name, value);
    }
    if (directive.replan) optimizer.force_replan();
    if (directive.shutdown) return;
    if (!directive.step) continue;
    try {
      train_one_step();
    } catch (const std::exception&) {
      // Rank 0 saw the matching failure in its own step (collectives fail
      // together); it stops issuing step directives, so just keep waiting
      // for the shutdown directive.
    }
  }
}

void Daemon::publish(Directive directive) {
  std::lock_guard lock(mu_);
  log_.push_back(std::move(directive));
  // Trim the prefix every worker has consumed (cursor_[0] is rank 0's slot
  // and never advances; skip it).
  std::uint64_t min_cursor = log_base_ + log_.size();
  for (std::size_t r = 1; r < cursor_.size(); ++r) {
    min_cursor = std::min(min_cursor, cursor_[r]);
  }
  while (log_base_ < min_cursor && !log_.empty()) {
    log_.pop_front();
    ++log_base_;
  }
  cv_.notify_all();
}

Daemon::Directive Daemon::await_directive(int rank) {
  std::unique_lock lock(mu_);
  auto& cursor = cursor_[static_cast<std::size_t>(rank)];
  cv_.wait(lock, [&] { return log_base_ + log_.size() > cursor; });
  const Directive directive = log_[cursor - log_base_];
  ++cursor;
  return directive;
}

}  // namespace spdkfac::ctl
