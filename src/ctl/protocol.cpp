#include "ctl/protocol.hpp"

#include <cstring>
#include <stdexcept>

namespace spdkfac::ctl {

std::vector<double> pack_text(const std::string& text) {
  const std::uint64_t len = text.size();
  const std::size_t doubles = 1 + (text.size() + sizeof(double) - 1) /
                                      sizeof(double);
  std::vector<double> payload(doubles, 0.0);
  // The length and the bytes travel as raw bit patterns inside doubles;
  // memcpy in/out keeps this well-defined (no double is ever *interpreted*
  // as a number, so NaN payload bytes are safe too).
  std::memcpy(payload.data(), &len, sizeof(len));
  if (!text.empty()) {
    std::memcpy(payload.data() + 1, text.data(), text.size());
  }
  return payload;
}

std::string unpack_text(std::span<const double> payload) {
  if (payload.empty()) {
    throw std::runtime_error("ctl: text payload missing its length header");
  }
  std::uint64_t len = 0;
  std::memcpy(&len, payload.data(), sizeof(len));
  const std::size_t capacity = (payload.size() - 1) * sizeof(double);
  if (len > capacity) {
    throw std::runtime_error("ctl: text payload length " +
                             std::to_string(len) + " exceeds the " +
                             std::to_string(capacity) + " bytes shipped");
  }
  std::string text(len, '\0');
  if (len > 0) {
    std::memcpy(text.data(), payload.data() + 1, len);
  }
  return text;
}

std::vector<unsigned char> encode_text_frame(std::uint16_t tag,
                                             const std::string& text) {
  const std::vector<double> payload = pack_text(text);
  comm::wire::FrameHeader header;
  header.tag = tag;
  header.elements = payload.size();
  return comm::wire::encode_frame(header, payload);
}

}  // namespace spdkfac::ctl
