// The spdkfacctl side of the ctl socket: a blocking connect (with retries
// while the daemon is still starting) and a blocking request/response
// exchange per command.
#pragma once

#include <string>

#include "ctl/protocol.hpp"

namespace spdkfac::ctl {

class CtlClient {
 public:
  /// Connects to the daemon's ctl socket, retrying (the daemon binds the
  /// socket on startup, so a race with launch is expected) for up to
  /// `connect_timeout_s`.  Throws std::runtime_error when the deadline
  /// passes without a connection.
  explicit CtlClient(std::string path, double connect_timeout_s = 5.0);
  ~CtlClient();

  CtlClient(const CtlClient&) = delete;
  CtlClient& operator=(const CtlClient&) = delete;

  /// Sends one command line and blocks for the reply.  Throws
  /// std::runtime_error on a torn/corrupt connection (a dead daemon).
  Response request(const std::string& command);

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace spdkfac::ctl
