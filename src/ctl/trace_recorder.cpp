#include "ctl/trace_recorder.hpp"

#include <algorithm>
#include <cstddef>

#include "util/json.hpp"

namespace spdkfac::ctl {

void TraceRecorder::add(std::string name, Lane lane, double start_s,
                        double end_s) {
  std::lock_guard lock(mu_);
  if (events_.size() >= kMaxEvents) {
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(
                                        kMaxEvents / 4));
  }
  events_.push_back(Event{std::move(name), lane, start_s, end_s});
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::string TraceRecorder::to_chrome_trace(
    const std::string& process_name) const {
  std::vector<Event> events;
  {
    std::lock_guard lock(mu_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.start_s < b.start_s;
                   });

  // Greedy lane packing per category: place each interval on the first
  // lane whose previous occupant already ended, else open a new lane.
  std::vector<double> compute_ends, comm_ends;
  std::vector<std::size_t> lane_of(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    std::vector<double>& ends =
        events[i].lane == Lane::kCompute ? compute_ends : comm_ends;
    std::size_t lane = ends.size();
    for (std::size_t l = 0; l < ends.size(); ++l) {
      if (ends[l] <= events[i].start_s) {
        lane = l;
        break;
      }
    }
    if (lane == ends.size()) {
      ends.push_back(events[i].end_s);
    } else {
      ends[lane] = std::max(ends[lane], events[i].end_s);
    }
    lane_of[i] = lane;
  }

  // Comm lanes are numbered after every compute lane, so the two groups
  // render as visually distinct blocks.
  const std::size_t n_compute = std::max<std::size_t>(compute_ends.size(), 1);
  const std::size_t n_comm = std::max<std::size_t>(comm_ends.size(), 1);

  std::string out = "[\n";
  out +=
      R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":)" +
      util::json_string(process_name) + "}}";
  for (std::size_t l = 0; l < n_compute; ++l) {
    out += ",\n";
    out += R"({"name":"thread_name","ph":"M","pid":1,"tid":)" +
           std::to_string(l) + R"(,"args":{"name":)" +
           util::json_string("compute-" + std::to_string(l)) + "}}";
  }
  for (std::size_t l = 0; l < n_comm; ++l) {
    out += ",\n";
    out += R"({"name":"thread_name","ph":"M","pid":1,"tid":)" +
           std::to_string(n_compute + l) + R"(,"args":{"name":)" +
           util::json_string("comm-" + std::to_string(l)) + "}}";
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& ev = events[i];
    const bool compute = ev.lane == Lane::kCompute;
    const std::size_t tid =
        compute ? lane_of[i] : n_compute + lane_of[i];
    const double dur_us = std::max(0.0, (ev.end_s - ev.start_s) * 1e6);
    out += ",\n";
    out += R"({"name":)" + util::json_string(ev.name) + R"(,"cat":)" +
           (compute ? R"("compute")" : R"("comm")") +
           R"(,"ph":"X","pid":1,"tid":)" + std::to_string(tid) +
           R"(,"ts":)" + util::json_number(ev.start_s * 1e6) +
           R"(,"dur":)" + util::json_number(dur_us) + "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace spdkfac::ctl
