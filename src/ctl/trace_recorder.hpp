// Live Chrome trace_event recorder for a real run (the simulator renders
// its *predicted* schedules via sim/trace.cpp; this renders what actually
// executed).  Compute intervals arrive from DistKfacOptimizer's task
// listener, communication intervals from the async engine's OpRecords —
// both on the engine clock, so they stitch into one consistent timeline.
//
// Rendering packs each category's intervals greedily onto the fewest
// non-overlapping lanes ("compute-0", "compute-1", ..., then "comm-0",
// ...), so concurrent work is visibly parallel and compute and comm open
// as distinct lane groups in Perfetto.
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace spdkfac::ctl {

class TraceRecorder {
 public:
  enum class Lane { kCompute, kComm };

  /// Records one [start_s, end_s) interval.  Thread-safe (compute tasks
  /// report from pool threads).  Zero/negative-duration intervals are kept
  /// and rendered with dur 0.
  void add(std::string name, Lane lane, double start_s, double end_s);

  std::size_t size() const;

  /// The recorded run as a Chrome trace_event JSON array (complete "X"
  /// events, metadata rows naming the process and every lane).  Strict
  /// JSON under any locale; timestamps are microseconds at full double
  /// precision, so hours-long runs keep distinct ticks.
  std::string to_chrome_trace(const std::string& process_name) const;

 private:
  struct Event {
    std::string name;
    Lane lane;
    double start_s;
    double end_s;
  };

  /// Retention cap: a long-running daemon must not grow without bound.
  /// When the buffer exceeds the cap the oldest quarter is dropped — the
  /// trace command then shows the most recent window of the run.
  static constexpr std::size_t kMaxEvents = 65536;

  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace spdkfac::ctl
