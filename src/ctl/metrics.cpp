#include "ctl/metrics.hpp"

#include "util/json.hpp"

namespace spdkfac::ctl {

namespace {

/// HELP text escape per the exposition format: backslash and newline.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_prometheus(const std::vector<Metric>& metrics) {
  std::string out;
  for (const Metric& m : metrics) {
    out += "# HELP " + m.name + " " + escape_help(m.help) + "\n";
    out += "# TYPE " + m.name + " " +
           (m.type == Metric::Type::kCounter ? "counter" : "gauge") + "\n";
    out += m.name + " " + util::format_double(m.value) + "\n";
  }
  return out;
}

}  // namespace spdkfac::ctl
