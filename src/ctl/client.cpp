#include "ctl/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "comm/transport.hpp"
#include "comm/wire.hpp"

namespace spdkfac::ctl {

CtlClient::CtlClient(std::string path, double connect_timeout_s)
    : path_(std::move(path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  comm::validate_socket_path(path_);
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(connect_timeout_s));
  for (;;) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      throw std::runtime_error("ctl: socket() failed: " +
                               std::string(std::strerror(errno)));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return;
    }
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("ctl: cannot connect to " + path_ + ": " +
                               std::strerror(err) +
                               " (is spdkfacd running?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

CtlClient::~CtlClient() {
  if (fd_ >= 0) ::close(fd_);
}

Response CtlClient::request(const std::string& command) {
  const auto frame = encode_text_frame(comm::wire::kCtlRequestTag, command);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("ctl: write to " + path_ +
                             " failed: " + std::strerror(errno));
  }

  comm::wire::FrameParser parser;
  unsigned char buf[4096];
  while (!parser.has_frame()) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      if (!parser.feed({buf, static_cast<std::size_t>(n)})) {
        throw std::runtime_error(
            "ctl: corrupt reply from " + path_ + " (" +
            comm::wire::to_string(parser.error()) + ")");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw std::runtime_error("ctl: daemon at " + path_ +
                             " closed the connection mid-reply");
  }
  const comm::wire::Frame reply = parser.pop_frame();
  Response resp;
  resp.ok = reply.header.tag == comm::wire::kCtlOkTag;
  if (!resp.ok && reply.header.tag != comm::wire::kCtlErrTag) {
    throw std::runtime_error("ctl: unexpected reply tag from " + path_);
  }
  resp.body = unpack_text(reply.payload);
  return resp;
}

}  // namespace spdkfac::ctl
