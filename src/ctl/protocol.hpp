// Control-plane message encoding — spdkfacctl <-> spdkfacd over a Unix
// socket, reusing the rank-to-rank framed wire protocol (comm/wire.hpp)
// with the ctl traffic tags.
//
// A ctl exchange is one request frame and one reply frame:
//
//   request   tag = wire::kCtlRequestTag, payload = pack_text(command line)
//   reply     tag = wire::kCtlOkTag  (success: payload is the result body)
//             tag = wire::kCtlErrTag (failure: payload is the error text)
//
// Frame payloads are doubles (the wire protocol's unit), so text is packed
// as a u64 byte length followed by the raw UTF-8 bytes, zero-padded to the
// next double boundary — 8-byte-aligned, endian-explicit, and symmetric
// (unpack_text(pack_text(s)) == s for any byte string).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "comm/wire.hpp"

namespace spdkfac::ctl {

/// Text -> frame payload: [u64 length | bytes... | zero padding].
std::vector<double> pack_text(const std::string& text);

/// Inverse of pack_text.  Throws std::runtime_error on a malformed payload
/// (length beyond the payload, or a truncated header).
std::string unpack_text(std::span<const double> payload);

/// One complete ctl frame (header + packed text), ready to write to the
/// socket byte stream.
std::vector<unsigned char> encode_text_frame(std::uint16_t tag,
                                             const std::string& text);

/// Success / error reply as spdkfacctl surfaces it.
struct Response {
  bool ok = false;
  std::string body;
};

}  // namespace spdkfac::ctl
