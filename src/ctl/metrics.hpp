// Prometheus text-exposition rendering for the daemon's `metrics` command.
// The format is the subset every scraper understands:
//
//   # HELP <name> <help>
//   # TYPE <name> gauge|counter
//   <name> <value>
//
// Values render through util::format_double — locale-independent, so a
// daemon running under de_DE cannot emit "0,5".
#pragma once

#include <string>
#include <vector>

namespace spdkfac::ctl {

struct Metric {
  enum class Type { kGauge, kCounter };

  std::string name;  ///< [a-zA-Z_][a-zA-Z0-9_]* by convention
  std::string help;  ///< one-line description (newlines are escaped)
  Type type = Type::kGauge;
  double value = 0.0;
};

/// The metrics as one Prometheus text-exposition document.
std::string render_prometheus(const std::vector<Metric>& metrics);

}  // namespace spdkfac::ctl
