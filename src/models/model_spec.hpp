// Shape-level DNN architecture specifications.
//
// SPD-KFAC's scheduling decisions (fusion, placement, CT/NCT) depend only on
// the *sequence of layer dimensions* of the trained model: Kronecker-factor
// sizes, parameter counts and per-layer FLOPs.  This module describes every
// KFAC-preconditioned layer (convolutions and the final fully-connected
// layer; pooling/BN/activations carry no preconditioned parameters) of the
// four CNNs evaluated in the paper (Table II):
//
//   Model         #Params  #Layers  Batch  sum(A) upper-tri  sum(G) upper-tri
//   ResNet-50      25.6M      54      32       62.3M             14.6M
//   ResNet-152     60.2M     156       8      162.0M             32.9M
//   DenseNet-201   20.0M     201      16      131.0M             18.0M
//   Inception-v4   42.7M     150      16      116.4M              4.7M
//
// Conventions (validated against the paper's reported numbers in
// tests/models): factor A of a conv layer has dimension Cin*KH*KW (no bias
// augmentation — BN follows every conv, e.g. the paper's largest ResNet-50
// factor 4608 = 512*3*3 and smallest 64 give exactly the quoted 10,619,136
// and 2,080 packed element counts); the fully-connected layer carries a bias
// and its A dimension is in_features + 1.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace spdkfac::models {

enum class LayerKind { kConv2d, kLinear };

/// One KFAC-preconditioned layer.
struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kConv2d;

  std::size_t in_channels = 0;   ///< Cin (or in_features for linear)
  std::size_t out_channels = 0;  ///< Cout (or out_features for linear)
  std::size_t kernel_h = 1;
  std::size_t kernel_w = 1;
  std::size_t stride = 1;
  std::size_t out_h = 1;  ///< output spatial height (1 for linear)
  std::size_t out_w = 1;
  bool has_bias = false;

  /// Kronecker factor A dimension: Cin*KH*KW (+1 with bias).
  std::size_t dim_a() const noexcept {
    return in_channels * kernel_h * kernel_w + (has_bias ? 1 : 0);
  }
  /// Kronecker factor G dimension: Cout.
  std::size_t dim_g() const noexcept { return out_channels; }

  /// Trainable parameter count (weights + bias).
  std::size_t params() const noexcept {
    return in_channels * kernel_h * kernel_w * out_channels +
           (has_bias ? out_channels : 0);
  }

  /// Packed upper-triangle element counts of the symmetric factors —
  /// exactly what the paper communicates (Section V-B).
  std::size_t a_elements() const noexcept {
    const std::size_t d = dim_a();
    return d * (d + 1) / 2;
  }
  std::size_t g_elements() const noexcept {
    const std::size_t d = dim_g();
    return d * (d + 1) / 2;
  }

  /// Spatial positions per sample the layer produces (T in KFC notation).
  std::size_t spatial_positions() const noexcept { return out_h * out_w; }

  /// Forward multiply-add FLOPs for a batch of `batch` samples
  /// (2 * N * T * Cout * Cin*KH*KW).
  double fwd_flops(std::size_t batch) const noexcept;

  /// Backward FLOPs (grad-input + grad-weight GEMMs ~= 2x forward).
  double bwd_flops(std::size_t batch) const noexcept;

  /// FLOPs of building factor A = a^T a (rows = N*T, dim = dim_a).
  double factor_a_flops(std::size_t batch) const noexcept;

  /// FLOPs of building factor G = g^T g (rows = N*T, dim = dim_g).
  double factor_g_flops(std::size_t batch) const noexcept;
};

/// A full model: ordered list of preconditioned layers, front (input side)
/// to back (classifier).
struct ModelSpec {
  std::string name;
  std::size_t input_channels = 3;
  std::size_t input_hw = 224;
  std::size_t default_batch = 32;  ///< per-GPU batch size of Table II
  std::vector<LayerSpec> layers;

  std::size_t num_layers() const noexcept { return layers.size(); }
  std::size_t total_params() const noexcept;
  std::size_t total_a_elements() const noexcept;
  std::size_t total_g_elements() const noexcept;
  double total_fwd_flops(std::size_t batch) const noexcept;
  double total_bwd_flops(std::size_t batch) const noexcept;
  double total_factor_flops(std::size_t batch) const noexcept;

  /// Packed sizes of all 2L Kronecker factors in schedule order
  /// (A_0..A_{L-1} then G_L..G_1) — the Fig. 3 distribution.
  std::vector<std::size_t> factor_packed_sizes() const;

  /// Dimensions of all 2L factors (A dims then G dims, layer order).
  std::vector<std::size_t> factor_dims() const;
};

/// The four CNNs of Table II, with the paper's per-GPU batch sizes.
ModelSpec resnet50();
ModelSpec resnet152();
ModelSpec densenet201();
ModelSpec inceptionv4();

/// Extensions beyond the paper's model set (classic K-FAC benchmarks used
/// by Martens & Grosse / Osawa et al.); handy for scheduling what-ifs —
/// VGG's enormous fully-connected factors stress the CT path.
ModelSpec vgg16();
ModelSpec vgg19();

/// Fully-connected spec mirroring nn::make_mlp(widths): one biased linear
/// layer per consecutive width pair.  Gives schedule-level tooling (the
/// planner, the simulator, the sched equivalence suite) the exact shape of
/// the runtime MLPs used by tests and examples.
ModelSpec mlp_spec(std::span<const std::size_t> widths);

/// Convolutional spec mirroring nn::make_small_cnn(in_channels, image_hw,
/// c1, c2, classes): conv(3x3, same) -> pool -> conv(3x3, same) -> pool ->
/// linear, all biased — the same layer dims, parameter counts and packed
/// factor sizes as the runtime network, so plans are exercised on non-MLP
/// shapes (mixed Conv2d/Linear factor dimensions).  Throws
/// std::invalid_argument unless image_hw is a positive multiple of 4 (two
/// 2x2 poolings).
ModelSpec conv_spec(std::size_t in_channels, std::size_t image_hw,
                    std::size_t c1, std::size_t c2, std::size_t classes);

/// All four Table II models, in the paper's presentation order.
std::vector<ModelSpec> paper_models();

/// Lookup by case-insensitive name ("resnet50", "resnet-50", ...).  Throws
/// std::invalid_argument for unknown names.
ModelSpec model_by_name(const std::string& name);

}  // namespace spdkfac::models
