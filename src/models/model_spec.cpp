#include "models/model_spec.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace spdkfac::models {

double LayerSpec::fwd_flops(std::size_t batch) const noexcept {
  return 2.0 * static_cast<double>(batch) * spatial_positions() *
         out_channels * (in_channels * kernel_h * kernel_w);
}

double LayerSpec::bwd_flops(std::size_t batch) const noexcept {
  // dL/dinput and dL/dweight GEMMs, each about the size of the forward one.
  return 2.0 * fwd_flops(batch);
}

double LayerSpec::factor_a_flops(std::size_t batch) const noexcept {
  const double rows = static_cast<double>(batch) * spatial_positions();
  const double d = static_cast<double>(dim_a());
  return rows * d * d;  // symmetric rank-k update: ~rows*d^2 FLOPs
}

double LayerSpec::factor_g_flops(std::size_t batch) const noexcept {
  const double rows = static_cast<double>(batch) * spatial_positions();
  const double d = static_cast<double>(dim_g());
  return rows * d * d;
}

std::size_t ModelSpec::total_params() const noexcept {
  std::size_t sum = 0;
  for (const auto& l : layers) sum += l.params();
  return sum;
}

std::size_t ModelSpec::total_a_elements() const noexcept {
  std::size_t sum = 0;
  for (const auto& l : layers) sum += l.a_elements();
  return sum;
}

std::size_t ModelSpec::total_g_elements() const noexcept {
  std::size_t sum = 0;
  for (const auto& l : layers) sum += l.g_elements();
  return sum;
}

double ModelSpec::total_fwd_flops(std::size_t batch) const noexcept {
  double sum = 0;
  for (const auto& l : layers) sum += l.fwd_flops(batch);
  return sum;
}

double ModelSpec::total_bwd_flops(std::size_t batch) const noexcept {
  double sum = 0;
  for (const auto& l : layers) sum += l.bwd_flops(batch);
  return sum;
}

double ModelSpec::total_factor_flops(std::size_t batch) const noexcept {
  double sum = 0;
  for (const auto& l : layers) {
    sum += l.factor_a_flops(batch) + l.factor_g_flops(batch);
  }
  return sum;
}

std::vector<std::size_t> ModelSpec::factor_packed_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(2 * layers.size());
  for (const auto& l : layers) sizes.push_back(l.a_elements());
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    sizes.push_back(it->g_elements());
  }
  return sizes;
}

std::vector<std::size_t> ModelSpec::factor_dims() const {
  std::vector<std::size_t> dims;
  dims.reserve(2 * layers.size());
  for (const auto& l : layers) dims.push_back(l.dim_a());
  for (const auto& l : layers) dims.push_back(l.dim_g());
  return dims;
}

namespace {

/// Incremental builder that tracks the architecture functions' bookkeeping.
/// Spatial maps are square throughout all four models; `hw` below is the
/// side length of the layer *input*.
class SpecBuilder {
 public:
  explicit SpecBuilder(std::string name, std::size_t input_hw,
                       std::size_t default_batch) {
    spec_.name = std::move(name);
    spec_.input_hw = input_hw;
    spec_.default_batch = default_batch;
  }

  /// Adds a (square-kernel) conv layer and returns its output side length.
  std::size_t conv(const std::string& name, std::size_t cin, std::size_t cout,
                   std::size_t k, std::size_t stride, std::size_t pad,
                   std::size_t in_hw) {
    return conv_rect(name, cin, cout, k, k, stride, pad, pad, in_hw);
  }

  /// Rectangular-kernel conv (Inception's 1x7 / 7x1 factorized layers).
  /// Padding keeps square spatial maps: pad_h applies to height, pad_w to
  /// width, and the models only use "same" padding for rectangular kernels.
  std::size_t conv_rect(const std::string& name, std::size_t cin,
                        std::size_t cout, std::size_t kh, std::size_t kw,
                        std::size_t stride, std::size_t pad_h,
                        std::size_t pad_w, std::size_t in_hw) {
    LayerSpec layer;
    layer.name = name;
    layer.kind = LayerKind::kConv2d;
    layer.in_channels = cin;
    layer.out_channels = cout;
    layer.kernel_h = kh;
    layer.kernel_w = kw;
    layer.stride = stride;
    layer.out_h = (in_hw + 2 * pad_h - kh) / stride + 1;
    layer.out_w = (in_hw + 2 * pad_w - kw) / stride + 1;
    layer.has_bias = false;  // every conv is followed by BatchNorm
    const std::size_t out = std::max(layer.out_h, layer.out_w);
    layer.out_h = layer.out_w = out;  // same-padded rect kernels stay square
    spec_.layers.push_back(layer);
    return out;
  }

  void linear(const std::string& name, std::size_t in_features,
              std::size_t out_features) {
    LayerSpec layer;
    layer.name = name;
    layer.kind = LayerKind::kLinear;
    layer.in_channels = in_features;
    layer.out_channels = out_features;
    layer.kernel_h = layer.kernel_w = 1;
    layer.out_h = layer.out_w = 1;
    layer.has_bias = true;
    spec_.layers.push_back(layer);
  }

  ModelSpec build() { return std::move(spec_); }

 private:
  ModelSpec spec_;
};

constexpr std::size_t pool_out(std::size_t in, std::size_t k,
                               std::size_t stride, std::size_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

/// Shared ResNet builder: `blocks` holds the bottleneck count per stage.
ModelSpec build_resnet(const std::string& name,
                       const std::vector<std::size_t>& blocks,
                       std::size_t default_batch) {
  SpecBuilder b(name, 224, default_batch);
  std::size_t hw = b.conv("conv1", 3, 64, 7, 2, 3, 224);  // 224 -> 112
  hw = pool_out(hw, 3, 2, 1);                             // maxpool -> 56

  const std::size_t mids[4] = {64, 128, 256, 512};
  std::size_t cin = 64;
  for (std::size_t stage = 0; stage < 4; ++stage) {
    const std::size_t mid = mids[stage];
    const std::size_t cout = mid * 4;
    for (std::size_t blk = 0; blk < blocks[stage]; ++blk) {
      const std::size_t stride = (stage > 0 && blk == 0) ? 2 : 1;
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(blk);
      b.conv(prefix + ".conv1", cin, mid, 1, 1, 0, hw);
      const std::size_t mid_hw =
          b.conv(prefix + ".conv2", mid, mid, 3, stride, 1, hw);
      b.conv(prefix + ".conv3", mid, cout, 1, 1, 0, mid_hw);
      if (blk == 0) {
        // Projection shortcut when channels or resolution change.
        b.conv(prefix + ".downsample", cin, cout, 1, stride, 0, hw);
      }
      hw = mid_hw;
      cin = cout;
    }
  }
  b.linear("fc", 512 * 4, 1000);
  return b.build();
}

}  // namespace

ModelSpec resnet50() {
  return build_resnet("ResNet-50", {3, 4, 6, 3}, /*batch=*/32);
}

ModelSpec resnet152() {
  return build_resnet("ResNet-152", {3, 8, 36, 3}, /*batch=*/8);
}

ModelSpec densenet201() {
  SpecBuilder b("DenseNet-201", 224, /*batch=*/16);
  constexpr std::size_t kGrowth = 32;
  constexpr std::size_t kBottleneck = 4 * kGrowth;  // 1x1 width

  std::size_t hw = b.conv("conv0", 3, 64, 7, 2, 3, 224);  // -> 112
  hw = pool_out(hw, 3, 2, 1);                             // -> 56
  std::size_t channels = 64;

  const std::size_t block_sizes[4] = {6, 12, 48, 32};
  for (std::size_t blk = 0; blk < 4; ++blk) {
    for (std::size_t i = 0; i < block_sizes[blk]; ++i) {
      const std::string prefix = "denseblock" + std::to_string(blk + 1) +
                                 ".layer" + std::to_string(i + 1);
      b.conv(prefix + ".conv1", channels, kBottleneck, 1, 1, 0, hw);
      b.conv(prefix + ".conv2", kBottleneck, kGrowth, 3, 1, 1, hw);
      channels += kGrowth;
    }
    if (blk < 3) {
      const std::string tname = "transition" + std::to_string(blk + 1);
      channels /= 2;
      b.conv(tname + ".conv", channels * 2, channels, 1, 1, 0, hw);
      hw = pool_out(hw, 2, 2, 0);  // 2x2 average pool
    }
  }
  b.linear("classifier", channels, 1000);  // channels == 1920
  return b.build();
}

ModelSpec inceptionv4() {
  SpecBuilder b("Inception-v4", 224, /*batch=*/16);

  // --- Stem (valid padding unless noted) ---------------------------------
  std::size_t hw = b.conv("stem.conv1", 3, 32, 3, 2, 0, 224);  // -> 111
  hw = b.conv("stem.conv2", 32, 32, 3, 1, 0, hw);              // -> 109
  hw = b.conv("stem.conv3", 32, 64, 3, 1, 1, hw);              // -> 109
  // mixed_3a: maxpool branch || conv branch, both stride 2
  const std::size_t hw3a = b.conv("stem.mixed3a.conv", 64, 96, 3, 2, 0, hw);
  hw = hw3a;  // concat -> 160 channels
  // mixed_4a: two branches ending in valid 3x3 convs
  b.conv("stem.mixed4a.b0.conv1", 160, 64, 1, 1, 0, hw);
  b.conv("stem.mixed4a.b0.conv2", 64, 96, 3, 1, 0, hw);
  b.conv("stem.mixed4a.b1.conv1", 160, 64, 1, 1, 0, hw);
  b.conv_rect("stem.mixed4a.b1.conv2", 64, 64, 1, 7, 1, 0, 3, hw);
  b.conv_rect("stem.mixed4a.b1.conv3", 64, 64, 7, 1, 1, 3, 0, hw);
  const std::size_t hw4a =
      b.conv("stem.mixed4a.b1.conv4", 64, 96, 3, 1, 0, hw);
  hw = hw4a;  // concat -> 192 channels
  // mixed_5a: conv branch stride 2 || maxpool
  hw = b.conv("stem.mixed5a.conv", 192, 192, 3, 2, 0, hw);  // -> 384 channels

  // --- 4x Inception-A (in/out 384 channels) ------------------------------
  for (int i = 0; i < 4; ++i) {
    const std::string p = "inceptionA" + std::to_string(i + 1);
    b.conv(p + ".b0.conv", 384, 96, 1, 1, 0, hw);
    b.conv(p + ".b1.conv1", 384, 64, 1, 1, 0, hw);
    b.conv(p + ".b1.conv2", 64, 96, 3, 1, 1, hw);
    b.conv(p + ".b2.conv1", 384, 64, 1, 1, 0, hw);
    b.conv(p + ".b2.conv2", 64, 96, 3, 1, 1, hw);
    b.conv(p + ".b2.conv3", 96, 96, 3, 1, 1, hw);
    b.conv(p + ".b3.conv", 384, 96, 1, 1, 0, hw);
  }

  // --- Reduction-A: 384 -> 1024 channels, stride 2 ------------------------
  {
    const std::size_t in_hw = hw;
    hw = b.conv("reductionA.b0.conv", 384, 384, 3, 2, 0, in_hw);
    b.conv("reductionA.b1.conv1", 384, 192, 1, 1, 0, in_hw);
    b.conv("reductionA.b1.conv2", 192, 224, 3, 1, 1, in_hw);
    b.conv("reductionA.b1.conv3", 224, 256, 3, 2, 0, in_hw);
  }

  // --- 7x Inception-B (in/out 1024 channels) ------------------------------
  for (int i = 0; i < 7; ++i) {
    const std::string p = "inceptionB" + std::to_string(i + 1);
    b.conv(p + ".b0.conv", 1024, 384, 1, 1, 0, hw);
    b.conv(p + ".b1.conv1", 1024, 192, 1, 1, 0, hw);
    b.conv_rect(p + ".b1.conv2", 192, 224, 1, 7, 1, 0, 3, hw);
    b.conv_rect(p + ".b1.conv3", 224, 256, 7, 1, 1, 3, 0, hw);
    b.conv(p + ".b2.conv1", 1024, 192, 1, 1, 0, hw);
    b.conv_rect(p + ".b2.conv2", 192, 192, 7, 1, 1, 3, 0, hw);
    b.conv_rect(p + ".b2.conv3", 192, 224, 1, 7, 1, 0, 3, hw);
    b.conv_rect(p + ".b2.conv4", 224, 224, 7, 1, 1, 3, 0, hw);
    b.conv_rect(p + ".b2.conv5", 224, 256, 1, 7, 1, 0, 3, hw);
    b.conv(p + ".b3.conv", 1024, 128, 1, 1, 0, hw);
  }

  // --- Reduction-B: 1024 -> 1536 channels, stride 2 ------------------------
  {
    const std::size_t in_hw = hw;
    b.conv("reductionB.b0.conv1", 1024, 192, 1, 1, 0, in_hw);
    hw = b.conv("reductionB.b0.conv2", 192, 192, 3, 2, 0, in_hw);
    b.conv("reductionB.b1.conv1", 1024, 256, 1, 1, 0, in_hw);
    b.conv_rect("reductionB.b1.conv2", 256, 256, 1, 7, 1, 0, 3, in_hw);
    b.conv_rect("reductionB.b1.conv3", 256, 320, 7, 1, 1, 3, 0, in_hw);
    b.conv("reductionB.b1.conv4", 320, 320, 3, 2, 0, in_hw);
  }

  // --- 3x Inception-C (in/out 1536 channels) ------------------------------
  for (int i = 0; i < 3; ++i) {
    const std::string p = "inceptionC" + std::to_string(i + 1);
    b.conv(p + ".b0.conv", 1536, 256, 1, 1, 0, hw);
    b.conv(p + ".b1.conv1", 1536, 384, 1, 1, 0, hw);
    b.conv_rect(p + ".b1.conv2a", 384, 256, 1, 3, 1, 0, 1, hw);
    b.conv_rect(p + ".b1.conv2b", 384, 256, 3, 1, 1, 1, 0, hw);
    b.conv(p + ".b2.conv1", 1536, 384, 1, 1, 0, hw);
    b.conv_rect(p + ".b2.conv2", 384, 448, 3, 1, 1, 1, 0, hw);
    b.conv_rect(p + ".b2.conv3", 448, 512, 1, 3, 1, 0, 1, hw);
    b.conv_rect(p + ".b2.conv4a", 512, 256, 1, 3, 1, 0, 1, hw);
    b.conv_rect(p + ".b2.conv4b", 512, 256, 3, 1, 1, 1, 0, hw);
    b.conv(p + ".b3.conv", 1536, 256, 1, 1, 0, hw);
  }

  b.linear("last_linear", 1536, 1000);
  return b.build();
}

namespace {

/// Shared VGG builder: `cfg` holds conv output channels, 0 marks a 2x2
/// max-pool.  All convs are 3x3 same-padded and carry biases (no BN in the
/// classic VGG), so their A factors are bias-augmented.
ModelSpec build_vgg(const std::string& name,
                    const std::vector<std::size_t>& cfg,
                    std::size_t default_batch) {
  SpecBuilder b(name, 224, default_batch);
  std::size_t hw = 224;
  std::size_t cin = 3;
  std::size_t conv_idx = 0;
  for (std::size_t cout : cfg) {
    if (cout == 0) {
      hw = pool_out(hw, 2, 2, 0);
      continue;
    }
    ++conv_idx;
    hw = b.conv("conv" + std::to_string(conv_idx), cin, cout, 3, 1, 1, hw);
    cin = cout;
  }
  // Classic VGG classifier head; fc6's 25088(+1)-dim A factor is the
  // largest Kronecker factor in any common CNN.
  b.linear("fc6", 512 * 7 * 7, 4096);
  b.linear("fc7", 4096, 4096);
  b.linear("fc8", 4096, 1000);
  ModelSpec spec = b.build();
  // VGG convs have biases (no BatchNorm).
  for (auto& layer : spec.layers) layer.has_bias = true;
  return spec;
}

}  // namespace

ModelSpec vgg16() {
  return build_vgg("VGG-16",
                   {64, 64, 0, 128, 128, 0, 256, 256, 256, 0, 512, 512, 512,
                    0, 512, 512, 512, 0},
                   /*batch=*/32);
}

ModelSpec vgg19() {
  return build_vgg("VGG-19",
                   {64, 64, 0, 128, 128, 0, 256, 256, 256, 256, 0, 512, 512,
                    512, 512, 0, 512, 512, 512, 512, 0},
                   /*batch=*/32);
}

ModelSpec mlp_spec(std::span<const std::size_t> widths) {
  if (widths.size() < 2) {
    throw std::invalid_argument("mlp_spec: need at least input and output");
  }
  ModelSpec spec;
  spec.name = "mlp";
  spec.input_channels = widths[0];
  spec.input_hw = 1;
  spec.default_batch = 8;
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    LayerSpec layer;
    layer.name = "fc" + std::to_string(i + 1);
    layer.kind = LayerKind::kLinear;
    layer.in_channels = widths[i];
    layer.out_channels = widths[i + 1];
    layer.has_bias = true;
    spec.layers.push_back(layer);
  }
  return spec;
}

ModelSpec conv_spec(std::size_t in_channels, std::size_t image_hw,
                    std::size_t c1, std::size_t c2, std::size_t classes) {
  if (image_hw == 0 || image_hw % 4 != 0) {
    throw std::invalid_argument(
        "conv_spec: image_hw must be a positive multiple of 4");
  }
  if (in_channels == 0 || c1 == 0 || c2 == 0 || classes == 0) {
    throw std::invalid_argument("conv_spec: all widths must be positive");
  }
  ModelSpec spec;
  spec.name = "small-cnn";
  spec.input_channels = in_channels;
  spec.input_hw = image_hw;
  spec.default_batch = 8;

  LayerSpec conv1;
  conv1.name = "conv1";
  conv1.kind = LayerKind::kConv2d;
  conv1.in_channels = in_channels;
  conv1.out_channels = c1;
  conv1.kernel_h = conv1.kernel_w = 3;
  conv1.stride = 1;  // 'same' padding: spatial size preserved
  conv1.out_h = conv1.out_w = image_hw;
  conv1.has_bias = true;
  spec.layers.push_back(conv1);

  LayerSpec conv2 = conv1;
  conv2.name = "conv2";
  conv2.in_channels = c1;
  conv2.out_channels = c2;
  conv2.out_h = conv2.out_w = image_hw / 2;  // after the first 2x2 pool
  spec.layers.push_back(conv2);

  LayerSpec fc;
  fc.name = "fc";
  fc.kind = LayerKind::kLinear;
  fc.in_channels = c2 * (image_hw / 4) * (image_hw / 4);
  fc.out_channels = classes;
  fc.has_bias = true;
  spec.layers.push_back(fc);
  return spec;
}

std::vector<ModelSpec> paper_models() {
  return {resnet50(), resnet152(), densenet201(), inceptionv4()};
}

ModelSpec model_by_name(const std::string& name) {
  std::string key;
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ') continue;
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (key == "resnet50") return resnet50();
  if (key == "resnet152") return resnet152();
  if (key == "densenet201") return densenet201();
  if (key == "inceptionv4") return inceptionv4();
  if (key == "vgg16") return vgg16();
  if (key == "vgg19") return vgg19();
  throw std::invalid_argument("unknown model: " + name);
}

}  // namespace spdkfac::models
