// Scaling study (extension beyond the paper's fixed 64-GPU evaluation):
// iteration time and SPD-KFAC's advantage as the cluster grows, using the
// paper-fabric cost model rescaled per world size.  The paper motivates its
// optimizations by communication overheads that grow with scale; this sweep
// makes the growth explicit and shows where each baseline breaks down.
#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header(
      "Scaling", "Iteration time vs cluster size (extension study)");

  const std::vector<int> worlds{4, 8, 16, 32, 64, 128};
  for (const auto& spec :
       {models::resnet50(), models::densenet201()}) {
    std::printf("\n-- %s (batch %zu/GPU, weak scaling) --\n",
                spec.name.c_str(), spec.default_batch);
    bench::Table table({"GPUs", "S-SGD", "D-KFAC", "MPD-KFAC", "SPD-KFAC",
                        "SP1", "SP2", "SPD imgs/s"});
    for (int world : worlds) {
      const auto cal = perf::ClusterCalibration::paper_fabric(world);
      const double ssgd = iteration_time(spec, spec.default_batch, cal,
                                         sim::AlgorithmConfig::sgd());
      const double dkfac = iteration_time(spec, spec.default_batch, cal,
                                          sim::AlgorithmConfig::dkfac());
      const double mpd = iteration_time(spec, spec.default_batch, cal,
                                        sim::AlgorithmConfig::mpd_kfac());
      const double spd = iteration_time(spec, spec.default_batch, cal,
                                        sim::AlgorithmConfig::spd_kfac());
      table.add_row({std::to_string(world), bench::seconds(ssgd),
                     bench::seconds(dkfac), bench::seconds(mpd),
                     bench::seconds(spd), bench::fmt("%.2f", dkfac / spd),
                     bench::fmt("%.2f", mpd / spd),
                     bench::fmt("%.0f",
                                world * static_cast<double>(
                                            spec.default_batch) /
                                    spd)});
    }
    table.print();
  }
  std::printf(
      "\nReading: communication terms (factor aggregation, inverse\n"
      "broadcast) grow with the cluster while compute stays fixed, so\n"
      "SPD-KFAC's advantage (SP1/SP2) widens with scale — consistent with\n"
      "the paper's motivation for overlapping them.\n");
  return 0;
}
