// Measured (not modeled) executor scaling: trains the same CNN under each
// strategy with the serial executor (pool_size 0) and growing work-stealing
// pools, and reports real per-step wall-clock plus the hidden-communication
// fraction.  This is the first physical Fig. 9/10-style overlap measurement
// in the repo: before the exec layer, the "pipelining" only existed in the
// simulator's pricing.
//
// The workload is deliberately compute-heavy (larger factor dims than the
// bench_runtime smoke model) so factor builds, inverses and GEMM inner
// loops dominate; with >= 2 hardware cores the pooled executor's step time
// drops strictly below the serial executor on the pipelined strategies.
// On a single-core host the pool can only hide communication waits, so
// expect parity there — the point of the JSON record is tracking the same
// machine across PRs.  Emits BENCH_overlap.json; the companion modeled
// numbers (AlgorithmConfig::compute_streams) land in the same file so the
// runtime and the cost model can be compared per config.
#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "sim/iteration.hpp"

using namespace spdkfac;

namespace {

constexpr int kSteps = 6;
constexpr std::size_t kPools[] = {0, 1, 2, 4};

bench::DistTrainConfig heavy_config(core::DistStrategy strategy,
                                    std::size_t pool) {
  bench::DistTrainConfig cfg;
  cfg.strategy = strategy;
  cfg.hooked = true;
  cfg.steps = kSteps;
  cfg.world = 2;
  cfg.in_channels = 3;
  cfg.image_hw = 16;
  cfg.conv1 = 16;
  cfg.conv2 = 32;
  cfg.classes = 10;
  cfg.batch = 16;
  cfg.pool_size = pool;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header(
      "Overlap", "Measured executor scaling: serial walk vs dataflow pools");

  bench::BenchJson json("overlap");
  bench::Table table({"Strategy", "pool", "mean/step (ms)", "p50 (ms)",
                      "p90 (ms)", "overlap frac", "speedup vs serial"});
  for (auto strategy :
       {core::DistStrategy::kMpdKfac, core::DistStrategy::kSpdKfac}) {
    double serial_mean = 0.0;
    for (std::size_t pool : kPools) {
      const bench::DistTrainResult res =
          bench::dist_train(heavy_config(strategy, pool));
      const bench::SampleStats s = bench::stats(res.step_seconds);
      if (pool == 0) serial_mean = s.mean;
      const double speedup = s.mean > 0.0 ? serial_mean / s.mean : 0.0;
      table.add_row({to_string(strategy), std::to_string(pool),
                     bench::fmt("%.2f", s.mean * 1e3),
                     bench::fmt("%.2f", s.p50 * 1e3),
                     bench::fmt("%.2f", s.p90 * 1e3),
                     bench::fmt("%.2f", res.overlap_fraction),
                     bench::fmt("%.2f", speedup)});
      std::string name = to_string(strategy);
      name += "/pool";
      name += std::to_string(pool);
      json.add_timing(name, s, res.overlap_fraction,
                      {{"pool_size", static_cast<double>(pool)},
                       {"speedup_vs_serial", speedup}});
    }
  }
  table.print();

  // The cost model's view of the same knob: compute_streams prices what the
  // pool does physically.  Same JSON file, "model/" prefix.
  std::printf("\nModeled counterpart (64-GPU calibration, ResNet-50):\n");
  bench::Table model_table({"Config", "iteration (s)", "hidden factor-comm"});
  for (int streams : {1, 2, 4}) {
    sim::AlgorithmConfig cfg = sim::AlgorithmConfig::spd_kfac();
    cfg.compute_streams = streams;
    const auto res = sim::simulate_iteration(models::resnet50(), 32,
                                             bench::cal64(), cfg);
    model_table.add_row({"SPD-KFAC x" + std::to_string(streams),
                         bench::seconds(res.total),
                         bench::fmt("%.2f", res.factor_comm_hidden_fraction())});
    std::string name = "model/SPD-KFAC/streams";
    name += std::to_string(streams);
    json.add_timing(name, {res.total, res.total, res.total},
                    res.factor_comm_hidden_fraction(),
                    {{"compute_streams", static_cast<double>(streams)}});
  }
  model_table.print();

  std::printf(
      "\nPool 0 is the serial executor (plan walked inline); pools >= 1 run\n"
      "the same plan as a work-stealing dataflow.  Models are bitwise\n"
      "identical across all rows (tests/core/test_determinism.cpp).\n");
  json.write();
  return 0;
}
