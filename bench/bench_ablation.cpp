// Fig. 13 — ablation of SPD-KFAC's two optimizations (Table IV notation):
//   -Pipe-LBP : bulk factor aggregation + local inverses (the D-KFAC base)
//   +Pipe-LBP : pipelined optimal-fusion factor aggregation only
//   -Pipe+LBP : load-balancing inverse placement only
//   +Pipe+LBP : both (SPD-KFAC)
// Also sweeps an LBP internal choice the paper leaves ambiguous: Algorithm 1
// line 13 accumulates d_i while Eq. (25) balances d_i^2; we add the Eq.-(21)
// estimated-time metric as the default and compare all three.
#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Fig. 13", "Ablation of pipelining and LBP (64 GPUs)");

  const auto& cal = bench::cal64();
  struct Variant {
    const char* name;
    sim::FactorCommMode fc;
    sim::InverseMode inv;
  };
  const std::vector<Variant> variants{
      {"-Pipe-LBP", sim::FactorCommMode::kBulk, sim::InverseMode::kLocalAll},
      {"+Pipe-LBP", sim::FactorCommMode::kOptimalFuse,
       sim::InverseMode::kLocalAll},
      {"-Pipe+LBP", sim::FactorCommMode::kBulk, sim::InverseMode::kLBP},
      {"+Pipe+LBP", sim::FactorCommMode::kOptimalFuse,
       sim::InverseMode::kLBP},
  };

  bench::Table table({"Model", "-Pipe-LBP", "+Pipe-LBP", "-Pipe+LBP",
                      "+Pipe+LBP", "both vs base"});
  for (const auto& spec : models::paper_models()) {
    std::vector<double> times;
    for (const auto& v : variants) {
      sim::AlgorithmConfig cfg = sim::AlgorithmConfig::dkfac();
      cfg.factor_comm = v.fc;
      cfg.inverse = v.inv;
      cfg.name = v.name;
      times.push_back(
          iteration_time(spec, spec.default_batch, cal, cfg));
    }
    table.add_row({spec.name, bench::seconds(times[0]),
                   bench::seconds(times[1]), bench::seconds(times[2]),
                   bench::seconds(times[3]),
                   bench::fmt("%.2fx", times[0] / times[3])});
  }
  table.print();
  std::printf(
      "\nPaper shape: +Pipe-LBP alone ~10%%, -Pipe+LBP alone 3-18%%, both\n"
      "together 10-35%% over the -Pipe-LBP baseline.\n");

  bench::print_header("Ablation (extra)",
                      "Algorithm 1 balance metric (LBP internal)");
  bench::Table metric_table(
      {"Model", "balance by d", "balance by d^2", "balance by est. time"});
  for (const auto& spec : models::paper_models()) {
    std::vector<double> times;
    for (auto metric :
         {sched::BalanceMetric::kDim, sched::BalanceMetric::kDimSquared,
          sched::BalanceMetric::kEstimatedTime}) {
      sim::AlgorithmConfig cfg = sim::AlgorithmConfig::spd_kfac();
      cfg.balance = metric;
      times.push_back(
          iteration_time(spec, spec.default_batch, cal, cfg));
    }
    metric_table.add_row({spec.name, bench::seconds(times[0]),
                          bench::seconds(times[1]),
                          bench::seconds(times[2])});
  }
  metric_table.print();
  return 0;
}
