// Real-runtime counterpart of the overlap figures: trains a small CNN on the
// in-process cluster under each strategy (hooked and post-hoc) and reports
// per-step wall-clock statistics plus the background engine's operation
// records — the overlap fraction is the share of communication busy time
// that executed while the passes were still running, i.e. communication the
// pipelining actually hid.
//
// This is a mechanism demonstration, not a performance claim: the
// in-process transport is memcpy-fast, so absolute gains are small; the
// cluster-scale numbers live in bench_iteration_time (simulator) and the
// executor-scaling numbers in bench_overlap.  Emits BENCH_runtime.json
// (per-config mean/p50/p90 step time + overlap fraction) for cross-PR
// tracking.
#include "bench_util.hpp"

using namespace spdkfac;

namespace {

constexpr int kSteps = 8;

struct Row {
  bench::SampleStats step;
  std::size_t ops = 0;
  double comm_busy_s = 0.0;
  double mean_queue_delay_s = 0.0;  // start - submit
  double overlap_fraction = 0.0;
  std::size_t arena_bytes_saved = 0;  // zero-copy path, per step
  std::size_t wire_bytes = 0;  // post-codec collective payload, per step
  std::size_t raw_bytes = 0;   // logical payload, per step
};

Row run(core::DistStrategy strategy, bool hooked,
        comm::Codec factor_codec = comm::Codec::kNone,
        comm::Codec grad_codec = comm::Codec::kNone) {
  bench::DistTrainConfig cfg;
  cfg.strategy = strategy;
  cfg.hooked = hooked;
  cfg.steps = kSteps;
  cfg.factor_codec = factor_codec;
  cfg.grad_codec = grad_codec;
  const bench::DistTrainResult res = bench::dist_train(cfg);

  Row row;
  row.step = bench::stats(res.step_seconds);
  row.ops = res.records.size();
  row.overlap_fraction = res.overlap_fraction;
  row.arena_bytes_saved = res.arena_bytes_saved;
  row.wire_bytes = res.wire_bytes_per_step;
  row.raw_bytes = res.raw_bytes_per_step;
  double delay = 0.0;
  for (const auto& r : res.records) {
    row.comm_busy_s += r.end_s - r.start_s;
    delay += r.start_s - r.submit_s;
  }
  if (!res.records.empty()) {
    row.mean_queue_delay_s = delay / static_cast<double>(res.records.size());
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Runtime", "Real in-process training: per-step wall time and overlap");

  bench::BenchJson json("runtime");
  bench::Table table({"Strategy", "Mode", "mean/step (ms)", "p50 (ms)",
                      "p90 (ms)", "comm ops", "comm busy (ms)",
                      "overlap frac", "wire/step (KB)"});
  const auto record = [&](const std::string& name, const Row& row) {
    const auto pos = name.find('/');
    table.add_row({name.substr(0, pos), name.substr(pos + 1),
                   bench::fmt("%.2f", row.step.mean * 1e3),
                   bench::fmt("%.2f", row.step.p50 * 1e3),
                   bench::fmt("%.2f", row.step.p90 * 1e3),
                   std::to_string(row.ops),
                   bench::fmt("%.2f", row.comm_busy_s * 1e3),
                   bench::fmt("%.2f", row.overlap_fraction),
                   bench::fmt("%.1f", static_cast<double>(row.wire_bytes) / 1e3)});
    json.add_timing(name, row.step, row.overlap_fraction, row.wire_bytes,
                    row.raw_bytes,
                    {{"comm_ops", static_cast<double>(row.ops)},
                     {"comm_busy_s", row.comm_busy_s},
                     {"mean_queue_delay_s", row.mean_queue_delay_s},
                     {"copies_eliminated_bytes_per_step",
                      static_cast<double>(row.arena_bytes_saved)}});
  };
  for (auto strategy :
       {core::DistStrategy::kDKfac, core::DistStrategy::kMpdKfac,
        core::DistStrategy::kSpdKfac}) {
    for (bool hooked : {false, true}) {
      const std::string mode = hooked ? "hooked" : "post-hoc";
      record(std::string(to_string(strategy)) + "/" + mode,
             run(strategy, hooked));
    }
  }
  // The compressed planner dimension on the same harness: top-k
  // error-feedback gradients shrink the wire column.  Factors stay
  // lossless here — this tiny CNN's batch-8 factors are rank-deficient, so
  // their smallest damped eigenvalue *is* the 3e-2 damping and even fp16
  // rounding can push them off SPD; quantized-factor numerics at realistic
  // damping is test_compressed_training's job, and the int8 bytes/time
  // story is bench_compression's (pricing needs no numerics).  The
  // in-process transport is memcpy-fast, so the *time* win also lives in
  // bench_compression.
  for (bool hooked : {false, true}) {
    const std::string mode = hooked ? "hooked" : "post-hoc";
    record(std::string(to_string(core::DistStrategy::kSpdKfac)) +
               "+topk-grads/" + mode,
           run(core::DistStrategy::kSpdKfac, hooked, comm::Codec::kNone,
               comm::Codec::kTopK));
  }
  table.print();
  std::printf(
      "\nHooked SPD-KFAC submits its factor all-reduces during the passes\n"
      "(the Fig. 6 architecture); post-hoc steps replay the same plan after\n"
      "them.  All strategies end in numerically identical models (tests).\n");
  json.write();
  return 0;
}
