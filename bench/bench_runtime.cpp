// Real-runtime counterpart of the overlap figures: trains a small CNN on the
// in-process cluster under each strategy (hook mode) and reports wall-clock
// per step plus the background engine's operation records — submit-to-start
// latency shows queuing, and ops submitted long before step() proves the
// communication really ran during the passes.
//
// This is a mechanism demonstration, not a performance claim: the
// in-process transport is memcpy-fast, so absolute gains are small; the
// cluster-scale numbers live in bench_iteration_time (simulator).
#include "bench_util.hpp"

using namespace spdkfac;

namespace {

constexpr int kSteps = 5;

struct Stats {
  double wall_s = 0.0;
  std::size_t ops = 0;
  double comm_busy_s = 0.0;
  double mean_queue_delay_s = 0.0;  // start - submit
};

Stats run(core::DistStrategy strategy, bool hooked) {
  bench::DistTrainConfig cfg;
  cfg.strategy = strategy;
  cfg.hooked = hooked;
  cfg.steps = kSteps;
  const bench::DistTrainResult res = bench::dist_train(cfg);

  Stats stats;
  stats.wall_s = res.wall_seconds / kSteps;
  stats.ops = res.records.size();
  double delay = 0.0;
  for (const auto& r : res.records) {
    stats.comm_busy_s += r.end_s - r.start_s;
    delay += r.start_s - r.submit_s;
  }
  if (!res.records.empty()) {
    stats.mean_queue_delay_s = delay / static_cast<double>(res.records.size());
  }
  return stats;
}

}  // namespace

int main() {
  bench::print_header(
      "Runtime", "Real in-process training: per-step wall time and overlap");

  bench::Table table({"Strategy", "Mode", "wall/step (ms)", "comm ops",
                      "comm busy (ms)", "mean queue delay (ms)"});
  for (auto strategy :
       {core::DistStrategy::kDKfac, core::DistStrategy::kMpdKfac,
        core::DistStrategy::kSpdKfac}) {
    for (bool hooked : {false, true}) {
      const Stats s = run(strategy, hooked);
      table.add_row({to_string(strategy), hooked ? "hooked" : "post-hoc",
                     bench::fmt("%.2f", s.wall_s * 1e3),
                     std::to_string(s.ops),
                     bench::fmt("%.2f", s.comm_busy_s * 1e3),
                     bench::fmt("%.3f", s.mean_queue_delay_s * 1e3)});
    }
  }
  table.print();
  std::printf(
      "\nHooked SPD-KFAC submits its factor all-reduces during the passes\n"
      "(the Fig. 6 architecture); post-hoc steps replay the same plan after\n"
      "them.  All strategies end in numerically identical models (tests).\n");
  return 0;
}
