// Real-runtime counterpart of the overlap figures: trains a small CNN on the
// in-process cluster under each strategy (hook mode) and reports wall-clock
// per step plus the background engine's operation records — submit-to-start
// latency shows queuing, and ops submitted long before step() proves the
// communication really ran during the passes.
//
// This is a mechanism demonstration, not a performance claim: the
// in-process transport is memcpy-fast, so absolute gains are small; the
// cluster-scale numbers live in bench_iteration_time (simulator).
#include <chrono>
#include <mutex>

#include "bench_util.hpp"
#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"

using namespace spdkfac;

namespace {

constexpr int kWorld = 4;
constexpr int kSteps = 5;

struct Stats {
  double wall_s = 0.0;
  std::size_t ops = 0;
  double comm_busy_s = 0.0;
  double mean_queue_delay_s = 0.0;  // start - submit
};

Stats run(core::DistStrategy strategy, bool hooked) {
  Stats stats;
  std::mutex mu;
  comm::Cluster::launch(kWorld, [&](comm::Communicator& comm) {
    tensor::Rng init(99);
    nn::Sequential model = nn::make_small_cnn(1, 12, 8, 16, 5, init);
    auto layers = model.preconditioned_layers();
    core::DistKfacOptions opts;
    opts.strategy = strategy;
    core::DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(5, 1, 12, 3);
    tensor::Rng shard(17 + comm.rank());
    nn::SoftmaxCrossEntropy loss;

    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < kSteps; ++s) {
      nn::Batch batch = data.sample(8, shard);
      if (hooked) {
        const nn::PassHooks hooks = optimizer.pass_hooks();
        loss.forward(model.forward(batch.inputs, hooks), batch.labels);
        model.backward(loss.backward(), hooks);
      } else {
        loss.forward(model.forward(batch.inputs), batch.labels);
        model.backward(loss.backward());
      }
      optimizer.step();
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      stats.wall_s = wall / kSteps;
      const auto records = optimizer.comm_records();
      stats.ops = records.size();
      double delay = 0.0;
      for (const auto& r : records) {
        stats.comm_busy_s += r.end_s - r.start_s;
        delay += r.start_s - r.submit_s;
      }
      if (!records.empty()) {
        stats.mean_queue_delay_s = delay / static_cast<double>(records.size());
      }
    }
  });
  return stats;
}

}  // namespace

int main() {
  bench::print_header(
      "Runtime", "Real in-process training: per-step wall time and overlap");

  bench::Table table({"Strategy", "Mode", "wall/step (ms)", "comm ops",
                      "comm busy (ms)", "mean queue delay (ms)"});
  for (auto strategy :
       {core::DistStrategy::kDKfac, core::DistStrategy::kMpdKfac,
        core::DistStrategy::kSpdKfac}) {
    for (bool hooked : {false, true}) {
      const Stats s = run(strategy, hooked);
      table.add_row({to_string(strategy), hooked ? "hooked" : "post-hoc",
                     bench::fmt("%.2f", s.wall_s * 1e3),
                     std::to_string(s.ops),
                     bench::fmt("%.2f", s.comm_busy_s * 1e3),
                     bench::fmt("%.3f", s.mean_queue_delay_s * 1e3)});
    }
  }
  table.print();
  std::printf(
      "\nHooked SPD-KFAC submits its factor all-reduces during the passes\n"
      "(the Fig. 6 architecture); post-hoc bulk strategies submit after.\n"
      "All strategies end in numerically identical models (see tests).\n");
  return 0;
}
