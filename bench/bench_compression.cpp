// Compressed collectives (ROADMAP 5(a)): what the codec seam buys, measured
// three ways —
//
//   1. codec microkernel throughput: encode/decode GB/s per ISA level
//      (scalar vs AVX2 — bitwise-identical outputs, different speed);
//   2. bytes-on-the-wire: the compressed/raw payload ratio per codec, plus
//      the per-iteration factor/gradient wire bytes of real plans;
//   3. end-to-end iteration time: the simulator prices the *re-derived*
//      compressed plan (fusion groups, CT/NCT typing and algorithm choices
//      all recomputed from the compressed alpha + beta*m' model of Eq. 14)
//      against the lossless plan, across strategies x P on a
//      bandwidth-bound fabric (the paper's constants with 10x the
//      per-element network cost — a 10GbE-class cluster instead of 100Gb/s
//      InfiniBand — where PR 8's compute speedups left communication as the
//      dominant term).
//
// Emits BENCH_compression.json.  The acceptance gates of the compression PR
// live in its fields: int8 factor comm must cut factor bytes >= 3x
// (factor_bytes_ratio) and the compressed schedule must beat lossless by
// >= 1.3x end-to-end on the bandwidth-bound config (speedup).
#include <random>

#include "bench_util.hpp"
#include "comm/codec.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"
#include "tensor/kernels/kernels.hpp"

using namespace spdkfac;

namespace {

constexpr double kTopKRatio = 0.01;  // ship 1% of gradient elements

// -------------------------------------------------------------------------
// 1. Codec microkernel throughput per ISA level
// -------------------------------------------------------------------------

struct Throughput {
  double encode_gbs = 0.0;
  double decode_gbs = 0.0;
};

Throughput codec_throughput(comm::Codec codec, std::size_t n) {
  std::vector<double> src(n);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-4.0, 4.0);
  for (double& x : src) x = dist(rng);
  std::vector<double> wire(comm::wire_elements(codec, n, kTopKRatio));
  std::vector<double> dst(n);

  // Best of a few repetitions: the steady-state rate, insensitive to one
  // scheduler hiccup.  Throughput counts the *logical* bytes processed.
  const auto best_of = [](auto&& fn) {
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
    }
    return best;
  };
  const double bytes = static_cast<double>(n) * sizeof(double);
  Throughput t;
  t.encode_gbs =
      bytes / best_of([&] { comm::encode(codec, src, wire, kTopKRatio); }) /
      1e9;
  t.decode_gbs =
      bytes / best_of([&] { comm::decode(codec, wire, dst, kTopKRatio); }) /
      1e9;
  return t;
}

// -------------------------------------------------------------------------
// 2 + 3. Plan bytes and end-to-end pricing
// -------------------------------------------------------------------------

std::size_t kind_bytes(const sched::IterationPlan& plan, sched::TaskKind kind,
                       bool wire) {
  std::size_t bytes = 0;
  for (const sched::Task& task : plan.tasks) {
    if (task.kind != kind) continue;
    bytes += (wire ? task.wire_elements : task.elements) * sizeof(double);
  }
  return bytes;
}

/// The paper's fabric constants for P workers with 10x the per-element
/// network cost: the bandwidth-bound regime the compression targets.
perf::ClusterCalibration bandwidth_bound_cal(int world) {
  comm::Topology topo = comm::Topology::flat(world);
  topo.inter.beta *= 10.0;
  return perf::ClusterCalibration::for_topology(topo);
}

sim::AlgorithmConfig compressed(sim::AlgorithmConfig cfg) {
  cfg.name += "+int8+topk";
  cfg.factor_codec = comm::Codec::kInt8;
  cfg.grad_codec = comm::Codec::kTopK;
  cfg.topk_ratio = kTopKRatio;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Compression",
                      "Codec throughput, bytes on the wire, and end-to-end "
                      "iteration time vs lossless");
  bench::BenchJson json("compression");

  // --- 1. microkernel throughput ------------------------------------------
  {
    constexpr std::size_t kN = std::size_t{1} << 22;  // 32 MiB of doubles
    bench::Table table({"Codec", "ISA", "encode (GB/s)", "decode (GB/s)",
                        "wire ratio"});
    for (auto isa :
         {tensor::kernels::Isa::kScalar, tensor::kernels::Isa::kAvx2}) {
      if (!tensor::kernels::supported(isa)) continue;
      tensor::kernels::force(isa);
      for (comm::Codec codec :
           {comm::Codec::kFp16, comm::Codec::kInt8, comm::Codec::kTopK}) {
        const Throughput t = codec_throughput(codec, kN);
        const double ratio = 1.0 / comm::wire_ratio(codec, kTopKRatio);
        table.add_row({to_string(codec), to_string(isa),
                       bench::fmt("%.2f", t.encode_gbs),
                       bench::fmt("%.2f", t.decode_gbs),
                       bench::fmt("%.1fx", ratio)});
        json.add(std::string("codec/") + to_string(codec) + "/" +
                     to_string(isa),
                 {{"encode_gbs", t.encode_gbs},
                  {"decode_gbs", t.decode_gbs},
                  {"wire_reduction", ratio}});
      }
    }
    tensor::kernels::force(tensor::kernels::best_supported());
    table.print();
  }

  // --- 2 + 3. plan bytes and priced iterations ----------------------------
  std::printf("\nEnd-to-end (simulator, 10x-beta fabric; int8 factors + "
              "top-k %.0f%% gradients):\n\n", kTopKRatio * 100.0);
  bench::Table table({"Model", "Strategy", "P", "lossless (s)",
                      "compressed (s)", "speedup", "factor bytes",
                      "grad bytes", "wire total"});
  for (const auto& spec : {models::vgg16(), models::resnet50()}) {
    for (int world : {8, 16, 32}) {
      const auto cal = bandwidth_bound_cal(world);
      for (const sim::AlgorithmConfig& base :
           {sim::AlgorithmConfig::dkfac(), sim::AlgorithmConfig::mpd_kfac(),
            sim::AlgorithmConfig::spd_kfac()}) {
        const auto lossless =
            simulate_iteration(spec, spec.default_batch, cal, base);
        const auto lossy = simulate_iteration(spec, spec.default_batch, cal,
                                              compressed(base));

        const auto ratio = [&](sched::TaskKind kind) {
          const std::size_t raw = kind_bytes(lossy.plan, kind, false);
          const std::size_t wire = kind_bytes(lossy.plan, kind, true);
          return wire == 0 ? 1.0
                           : static_cast<double>(raw) /
                                 static_cast<double>(wire);
        };
        const double factor_ratio = ratio(sched::TaskKind::kFusedAllReduce);
        const double grad_ratio = ratio(sched::TaskKind::kGradAllReduce);
        const std::size_t raw_bytes = bench::plan_raw_bytes(lossy.plan);
        const std::size_t wire_bytes = bench::plan_wire_bytes(lossy.plan);
        const double speedup = lossless.total / lossy.total;

        const std::string name = spec.name + "/" + base.name + "/P" +
                                 std::to_string(world);
        table.add_row({spec.name, base.name, std::to_string(world),
                       bench::seconds(lossless.total),
                       bench::seconds(lossy.total),
                       bench::fmt("%.2fx", speedup),
                       bench::fmt("%.1fx", factor_ratio),
                       bench::fmt("%.0fx", grad_ratio),
                       bench::fmt("%.1fx",
                                  static_cast<double>(raw_bytes) /
                                      static_cast<double>(wire_bytes))});
        json.add(name, {{"lossless_s", lossless.total},
                        {"compressed_s", lossy.total},
                        {"speedup", speedup},
                        {"factor_bytes_ratio", factor_ratio},
                        {"grad_bytes_ratio", grad_ratio},
                        {"wire_bytes_per_iter",
                         static_cast<double>(wire_bytes)},
                        {"raw_bytes_per_iter",
                         static_cast<double>(raw_bytes)}});
      }
    }
  }
  table.print();
  std::printf(
      "\nThe compressed columns price *re-derived* plans: the planner re-\n"
      "runs the fusion DP and LBP placement on the compressed beta, so the\n"
      "schedule structure itself differs from lossless (golden tests pin\n"
      "this).  int8 cuts factor bytes ~7.8x, top-k cuts gradient bytes\n"
      "~100x; the end-to-end win is what survives overlap and the alpha\n"
      "terms.\n");
  json.write();
  return 0;
}
