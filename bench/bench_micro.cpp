// Substrate micro-benchmarks (google-benchmark): the dense linear algebra,
// collectives, and planning primitives everything else is built on.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "comm/cluster.hpp"
#include "sched/fusion.hpp"
#include "sched/placement.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"
#include "tensor/linalg.hpp"
#include "tensor/random.hpp"
#include "tensor/symmetric.hpp"

namespace {

using namespace spdkfac;

void BM_Matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(1);
  const tensor::Matrix a = tensor::random_normal(n, n, rng);
  const tensor::Matrix b = tensor::random_normal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_CholeskyInverse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(2);
  const tensor::Matrix spd = tensor::random_spd(n, rng, 0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::damped_inverse(spd, 1e-3));
  }
}
BENCHMARK(BM_CholeskyInverse)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_PackUnpack(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  tensor::Rng rng(3);
  tensor::Matrix m = tensor::random_spd(n, rng);
  std::vector<double> packed(tensor::packed_size(n));
  for (auto _ : state) {
    tensor::pack_upper(m, packed);
    tensor::unpack_upper(packed, m);
    benchmark::DoNotOptimize(packed.data());
  }
}
BENCHMARK(BM_PackUnpack)->Arg(64)->Arg(512);

void BM_RingAllReduce(benchmark::State& state) {
  const int world = static_cast<int>(state.range(0));
  const std::size_t elements = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::Cluster::launch(world, [&](comm::Communicator& comm) {
      std::vector<double> data(elements, comm.rank() + 1.0);
      comm.all_reduce(data, comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * elements);
}
BENCHMARK(BM_RingAllReduce)
    ->Args({2, 1 << 14})
    ->Args({4, 1 << 14})
    ->Args({4, 1 << 18});

void BM_FusionPlanning(benchmark::State& state) {
  const auto spec = models::resnet152();
  sched::FusionPlanInput input;
  double clock = 0.0;
  for (const auto& layer : spec.layers) {
    clock += 1e-3;
    input.ready_times.push_back(clock);
    input.sizes.push_back(layer.a_elements());
  }
  const auto& cal = bench::cal64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::plan_fusion(input, cal.allreduce,
                                               sched::FusionPolicy::kOptimal));
  }
}
BENCHMARK(BM_FusionPlanning);

void BM_LbpPlacement(benchmark::State& state) {
  const auto dims = models::densenet201().factor_dims();
  const auto& cal = bench::cal64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::lbp_place(dims, 64, cal.inverse, cal.bcast_fabric));
  }
}
BENCHMARK(BM_LbpPlacement);

void BM_SimulateIteration(benchmark::State& state) {
  const auto spec = models::resnet50();
  const auto& cal = bench::cal64();
  const auto cfg = sim::AlgorithmConfig::spd_kfac();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_iteration(spec, 32, cal, cfg));
  }
}
BENCHMARK(BM_SimulateIteration);

}  // namespace

BENCHMARK_MAIN();
