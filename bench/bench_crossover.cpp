// Fig. 11 — comparison of the inverse computation model and the symmetric-
// matrix broadcast model: the crossover dimension below which a tensor
// should be an NCT (inverted redundantly on every GPU) rather than a CT
// (inverted once and broadcast).
//
// Two curve pairs are reported:
//   * the paper's published fits (Eq. 26 exponential vs Eq. 27 broadcast) —
//     crossover in the low thousands of dimensions, as in Fig. 11;
//   * the simulator's task-pricing pair (cubic inverse law vs fabric
//     broadcast cost) — what Algorithm 1 consumes in this reproduction.
#include "bench_util.hpp"
#include "perf/models.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Fig. 11",
                      "Inverse compute vs broadcast cost crossover");

  const auto& cal = bench::cal64();
  const auto paper_inv = perf::ClusterCalibration::fig8_inverse_model();

  bench::Table table({"dim", "exp inv (ms)", "Fig7b bcast (ms)",
                      "cubic inv (ms)", "fabric bcast (ms)"});
  for (std::size_t d = 256; d <= 8192; d *= 2) {
    table.add_row({std::to_string(d), bench::millis(paper_inv.time(d)),
                   bench::millis(cal.broadcast.time_dim(d)),
                   bench::millis(cal.inverse.time(d)),
                   bench::millis(cal.bcast_fabric.time_dim(d))});
  }
  table.print();

  const std::size_t paper_cross =
      perf::ct_nct_crossover_dim(paper_inv, cal.broadcast);
  const std::size_t sim_cross =
      perf::ct_nct_crossover_dim(cal.inverse, cal.bcast_fabric);
  std::printf(
      "\nCrossover (largest NCT dimension):\n"
      "  paper-model pair   : d = %zu\n"
      "  simulator pair     : d = %zu\n"
      "Below the crossover a tensor is cheaper to invert everywhere than to\n"
      "broadcast (NCT); above it, distribute-and-broadcast wins (CT).\n",
      paper_cross, sim_cross);
  return 0;
}
