// Shared helpers for the per-figure benchmark harnesses and the examples:
// console tables, the paper-testbed calibrations, and the small-CNN
// distributed-training harness (bench_runtime / examples use the same
// cluster/model setup).
#pragma once

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "tensor/matrix.hpp"

namespace spdkfac::bench {

/// The paper's 64x RTX2080Ti testbed calibration (shared instance — every
/// figure bench prices against the same constants).
inline const perf::ClusterCalibration& cal64() {
  static const perf::ClusterCalibration cal =
      perf::ClusterCalibration::paper_rtx2080ti_64gpu();
  return cal;
}

/// Real distributed training of a small CNN on the in-process cluster —
/// the shared harness behind bench_runtime and examples/distributed_training.
struct DistTrainConfig {
  int world = 4;
  int steps = 5;
  core::DistStrategy strategy = core::DistStrategy::kSpdKfac;
  bool hooked = true;  ///< pass_hooks() in-pass submission (Fig. 6)
  std::size_t image_hw = 12;
  std::size_t conv1 = 8, conv2 = 16;
  std::size_t classes = 5;
  std::size_t batch = 8;
  std::uint64_t init_seed = 99;   ///< shared across ranks => identical replicas
  std::uint64_t data_seed = 3;
  double noise = 0.0;
  double lr = 0.05;
  double damping = 3e-2;
};

struct DistTrainResult {
  std::vector<tensor::Matrix> rank0_weights;
  double rank0_loss = 0.0;
  double wall_seconds = 0.0;                ///< whole run, rank 0
  std::vector<comm::OpRecord> records;      ///< rank 0 engine records
  std::size_t broadcast_cts = 0;            ///< CTs of the final placement
};

inline DistTrainResult dist_train(const DistTrainConfig& cfg) {
  DistTrainResult result;
  std::mutex mu;
  comm::Cluster::launch(cfg.world, [&](comm::Communicator& comm) {
    tensor::Rng init(cfg.init_seed);
    nn::Sequential model = nn::make_small_cnn(1, cfg.image_hw, cfg.conv1,
                                              cfg.conv2, cfg.classes, init);
    auto layers = model.preconditioned_layers();
    core::DistKfacOptions opts;
    opts.strategy = cfg.strategy;
    opts.lr = cfg.lr;
    opts.damping = cfg.damping;
    core::DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(cfg.classes, 1, cfg.image_hw,
                                     cfg.data_seed, cfg.noise);
    tensor::Rng shard(100 + comm.rank());
    nn::SoftmaxCrossEntropy loss;

    const auto t0 = std::chrono::steady_clock::now();
    double last_loss = 0.0;
    for (int s = 0; s < cfg.steps; ++s) {
      nn::Batch batch = data.sample(cfg.batch, shard);
      if (cfg.hooked) {
        const nn::PassHooks hooks = optimizer.pass_hooks();
        last_loss =
            loss.forward(model.forward(batch.inputs, hooks), batch.labels);
        model.backward(loss.backward(), hooks);
      } else {
        last_loss = loss.forward(model.forward(batch.inputs), batch.labels);
        model.backward(loss.backward());
      }
      optimizer.step();
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      for (auto* l : layers) result.rank0_weights.push_back(l->weight());
      result.rank0_loss = last_loss;
      result.wall_seconds = wall;
      result.records = optimizer.comm_records();
      result.broadcast_cts = optimizer.placement().num_cts();
    }
  });
  return result;
}

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_row_divider(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Simple fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_cells = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::putchar('\n');
    };
    print_cells(columns_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    print_row_divider(static_cast<int>(total));
    for (const auto& row : rows_) print_cells(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string seconds(double s) { return fmt("%.4f", s); }
inline std::string millis(double s) { return fmt("%.1f", s * 1e3); }
inline std::string mega(double x) { return fmt("%.1f", x / 1e6); }

}  // namespace spdkfac::bench
