// Shared console-table helpers for the per-figure benchmark harnesses.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace spdkfac::bench {

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_row_divider(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Simple fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_cells = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::putchar('\n');
    };
    print_cells(columns_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    print_row_divider(static_cast<int>(total));
    for (const auto& row : rows_) print_cells(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string seconds(double s) { return fmt("%.4f", s); }
inline std::string millis(double s) { return fmt("%.1f", s * 1e3); }
inline std::string mega(double x) { return fmt("%.1f", x / 1e6); }

}  // namespace spdkfac::bench
