// Shared helpers for the per-figure benchmark harnesses and the examples:
// console tables, machine-readable BENCH_*.json emission (so the perf
// trajectory is tracked across PRs), the paper-testbed calibrations, and
// the small-CNN distributed-training harness (bench_runtime /
// bench_overlap / examples use the same cluster/model setup).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/codec.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "perf/models.hpp"
#include "sched/plan.hpp"
#include "tensor/matrix.hpp"
#include "util/json.hpp"

namespace spdkfac::bench {

/// Bytes one iteration of `plan` puts on the wire: the sum of each
/// collective task's post-codec wire payload.  Algorithm-level multipliers
/// (a ring's 2(P-1)/P passes) hit lossless and compressed payloads alike,
/// so they cancel out of every compression ratio derived from this.
inline std::size_t plan_wire_bytes(const sched::IterationPlan& plan) {
  std::size_t bytes = 0;
  for (const sched::Task& task : plan.tasks) {
    if (task.is_collective()) bytes += task.wire_elements * sizeof(double);
  }
  return bytes;
}

/// Same sum over the logical (pre-codec) payloads — the lossless baseline
/// the wire bytes are compared against.
inline std::size_t plan_raw_bytes(const sched::IterationPlan& plan) {
  std::size_t bytes = 0;
  for (const sched::Task& task : plan.tasks) {
    if (task.is_collective()) bytes += task.elements * sizeof(double);
  }
  return bytes;
}

/// The paper's 64x RTX2080Ti testbed calibration (shared instance — every
/// figure bench prices against the same constants).
inline const perf::ClusterCalibration& cal64() {
  static const perf::ClusterCalibration cal =
      perf::ClusterCalibration::paper_rtx2080ti_64gpu();
  return cal;
}

/// Real distributed training of a small CNN on the in-process cluster —
/// the shared harness behind bench_runtime, bench_overlap and
/// examples/distributed_training.
struct DistTrainConfig {
  int world = 4;
  int steps = 5;
  core::DistStrategy strategy = core::DistStrategy::kSpdKfac;
  bool hooked = true;  ///< pass_hooks() in-pass submission (Fig. 6)
  std::size_t in_channels = 1;
  std::size_t image_hw = 12;
  std::size_t conv1 = 8, conv2 = 16;
  std::size_t classes = 5;
  std::size_t batch = 8;
  std::uint64_t init_seed = 99;   ///< shared across ranks => identical replicas
  std::uint64_t data_seed = 3;
  double noise = 0.0;
  double lr = 0.05;
  double damping = 3e-2;
  /// Per-rank executor pool (DistKfacOptions::pool_size); ~0 keeps the
  /// optimizer default, 0 forces the serial executor.
  std::size_t pool_size = static_cast<std::size_t>(-1);
  /// Cluster backend: in-process threads (default) or process-per-rank over
  /// shared memory / Unix sockets.  The numerics are bitwise identical on
  /// every backend; the multi-process backends cannot report engine records
  /// or overlap accounting across the process boundary (those fields stay
  /// empty in the result).
  comm::TransportKind transport = comm::TransportKind::kInProcess;
  std::size_t shm_ring_bytes = comm::kDefaultShmRingBytes;
  /// Collective payload codecs (DistKfacOptions counterparts) — lossless by
  /// default so every existing bench keeps its seed numbers.
  comm::Codec factor_codec = comm::Codec::kNone;
  comm::Codec grad_codec = comm::Codec::kNone;
  double topk_ratio = 0.01;
};

struct DistTrainResult {
  std::vector<tensor::Matrix> rank0_weights;
  double rank0_loss = 0.0;
  double wall_seconds = 0.0;                ///< whole run, rank 0
  std::vector<double> step_seconds;         ///< per-step wall, rank 0
  std::vector<comm::OpRecord> records;      ///< rank 0 engine records
  std::size_t broadcast_cts = 0;            ///< CTs of the final placement
  /// Fraction of rank 0's communication busy time that executed while the
  /// forward/backward passes were still running — comm the pipelining hid
  /// behind computation (engine-clock interval accounting).
  double overlap_fraction = 0.0;
  /// Rank 0's per-step bytes the zero-copy arena stopped copying/zeroing
  /// (DistKfacOptimizer::arena_bytes_saved_per_step; in-process backend
  /// only, like the engine records).
  std::size_t arena_bytes_saved = 0;
  /// Post-codec / pre-codec collective payload bytes of one step's plan
  /// (plan_wire_bytes / plan_raw_bytes) — equal unless a codec is on.
  std::size_t wire_bytes_per_step = 0;
  std::size_t raw_bytes_per_step = 0;
};

DistTrainResult dist_train_multiprocess(const DistTrainConfig& cfg);

inline DistTrainResult dist_train(const DistTrainConfig& cfg) {
  if (cfg.transport != comm::TransportKind::kInProcess) {
    return dist_train_multiprocess(cfg);
  }
  DistTrainResult result;
  std::mutex mu;
  comm::Cluster::launch(cfg.world, [&](comm::Communicator& comm) {
    tensor::Rng init(cfg.init_seed);
    nn::Sequential model =
        nn::make_small_cnn(cfg.in_channels, cfg.image_hw, cfg.conv1,
                           cfg.conv2, cfg.classes, init);
    auto layers = model.preconditioned_layers();
    core::DistKfacOptions opts;
    opts.strategy = cfg.strategy;
    opts.lr = cfg.lr;
    opts.damping = cfg.damping;
    opts.transport = cfg.transport;
    opts.shm_ring_bytes = cfg.shm_ring_bytes;
    opts.factor_codec = cfg.factor_codec;
    opts.grad_codec = cfg.grad_codec;
    opts.topk_ratio = cfg.topk_ratio;
    if (cfg.pool_size != static_cast<std::size_t>(-1)) {
      opts.pool_size = cfg.pool_size;
    }
    core::DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(cfg.classes, cfg.in_channels,
                                     cfg.image_hw, cfg.data_seed, cfg.noise);
    tensor::Rng shard(100 + comm.rank());
    nn::SoftmaxCrossEntropy loss;

    // Pass windows on the engine clock, so op records (same clock) can be
    // classified as hidden-behind-compute or exposed.
    std::vector<std::pair<double, double>> pass_windows;
    std::vector<double> step_seconds;
    const auto t0 = std::chrono::steady_clock::now();
    double last_loss = 0.0;
    for (int s = 0; s < cfg.steps; ++s) {
      const auto step_t0 = std::chrono::steady_clock::now();
      nn::Batch batch = data.sample(cfg.batch, shard);
      const double pass_begin = optimizer.engine_now_s();
      if (cfg.hooked) {
        const nn::PassHooks hooks = optimizer.pass_hooks();
        last_loss =
            loss.forward(model.forward(batch.inputs, hooks), batch.labels);
        model.backward(loss.backward(), hooks);
      } else {
        last_loss = loss.forward(model.forward(batch.inputs), batch.labels);
        model.backward(loss.backward());
      }
      pass_windows.emplace_back(pass_begin, optimizer.engine_now_s());
      optimizer.step();
      step_seconds.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        step_t0)
              .count());
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      for (auto* l : layers) result.rank0_weights.push_back(l->weight());
      result.rank0_loss = last_loss;
      result.wall_seconds = wall;
      result.step_seconds = std::move(step_seconds);
      result.records = optimizer.comm_records();
      result.broadcast_cts = optimizer.placement().num_cts();
      result.arena_bytes_saved = optimizer.arena_bytes_saved_per_step();
      result.wire_bytes_per_step = plan_wire_bytes(optimizer.plan());
      result.raw_bytes_per_step = plan_raw_bytes(optimizer.plan());

      double busy = 0.0, hidden = 0.0;
      for (const comm::OpRecord& r : result.records) {
        busy += r.end_s - r.start_s;
        for (const auto& [b, e] : pass_windows) {
          hidden += std::max(0.0, std::min(r.end_s, e) - std::max(r.start_s, b));
        }
      }
      result.overlap_fraction = busy > 0.0 ? hidden / busy : 0.0;
    }
  });
  return result;
}

/// Process-per-rank variant (transport = shm / socket): the same training
/// loop forked one process per rank, rank 0's observables shipped back
/// through the launcher pipe as doubles.  Engine records and the overlap
/// accounting stay behind in the worker process (empty in the result);
/// loss, wall times, CT count and the final weights cross intact.
inline DistTrainResult dist_train_multiprocess(const DistTrainConfig& cfg) {
  comm::LaunchOptions launch_opts;
  launch_opts.shm_ring_bytes = cfg.shm_ring_bytes;
  const auto per_rank = comm::Cluster::launch_collect(
      cfg.transport, comm::Topology::flat(cfg.world),
      [&](comm::Communicator& comm) {
        tensor::Rng init(cfg.init_seed);
        nn::Sequential model =
            nn::make_small_cnn(cfg.in_channels, cfg.image_hw, cfg.conv1,
                               cfg.conv2, cfg.classes, init);
        auto layers = model.preconditioned_layers();
        core::DistKfacOptions opts;
        opts.strategy = cfg.strategy;
        opts.lr = cfg.lr;
        opts.damping = cfg.damping;
        opts.transport = cfg.transport;
        opts.shm_ring_bytes = cfg.shm_ring_bytes;
        opts.factor_codec = cfg.factor_codec;
        opts.grad_codec = cfg.grad_codec;
        opts.topk_ratio = cfg.topk_ratio;
        if (cfg.pool_size != static_cast<std::size_t>(-1)) {
          opts.pool_size = cfg.pool_size;
        }
        core::DistKfacOptimizer optimizer(layers, comm, opts);
        nn::SyntheticClassification data(cfg.classes, cfg.in_channels,
                                         cfg.image_hw, cfg.data_seed,
                                         cfg.noise);
        tensor::Rng shard(100 + comm.rank());
        nn::SoftmaxCrossEntropy loss;

        std::vector<double> step_seconds;
        const auto t0 = std::chrono::steady_clock::now();
        double last_loss = 0.0;
        for (int s = 0; s < cfg.steps; ++s) {
          const auto step_t0 = std::chrono::steady_clock::now();
          nn::Batch batch = data.sample(cfg.batch, shard);
          if (cfg.hooked) {
            const nn::PassHooks hooks = optimizer.pass_hooks();
            last_loss = loss.forward(model.forward(batch.inputs, hooks),
                                     batch.labels);
            model.backward(loss.backward(), hooks);
          } else {
            last_loss =
                loss.forward(model.forward(batch.inputs), batch.labels);
            model.backward(loss.backward());
          }
          optimizer.step();
          step_seconds.push_back(std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() -
                                     step_t0)
                                     .count());
        }
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

        std::vector<double> out;
        if (comm.rank() != 0) return out;
        out.push_back(last_loss);
        out.push_back(wall);
        out.push_back(static_cast<double>(optimizer.placement().num_cts()));
        out.push_back(static_cast<double>(plan_wire_bytes(optimizer.plan())));
        out.push_back(static_cast<double>(plan_raw_bytes(optimizer.plan())));
        out.push_back(static_cast<double>(step_seconds.size()));
        out.insert(out.end(), step_seconds.begin(), step_seconds.end());
        out.push_back(static_cast<double>(layers.size()));
        for (auto* l : layers) {
          const tensor::Matrix& w = l->weight();
          out.push_back(static_cast<double>(w.rows()));
          out.push_back(static_cast<double>(w.cols()));
          out.insert(out.end(), w.data().begin(), w.data().end());
        }
        return out;
      },
      launch_opts);

  DistTrainResult result;
  const std::vector<double>& enc = per_rank.at(0);
  std::size_t pos = 0;
  auto next = [&]() { return enc.at(pos++); };
  result.rank0_loss = next();
  result.wall_seconds = next();
  result.broadcast_cts = static_cast<std::size_t>(next());
  result.wire_bytes_per_step = static_cast<std::size_t>(next());
  result.raw_bytes_per_step = static_cast<std::size_t>(next());
  const auto n_steps = static_cast<std::size_t>(next());
  for (std::size_t s = 0; s < n_steps; ++s) {
    result.step_seconds.push_back(next());
  }
  const auto n_layers = static_cast<std::size_t>(next());
  for (std::size_t l = 0; l < n_layers; ++l) {
    const auto rows = static_cast<std::size_t>(next());
    const auto cols = static_cast<std::size_t>(next());
    tensor::Matrix w(rows, cols);
    for (double& v : w.data()) v = next();
    result.rank0_weights.push_back(std::move(w));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Per-config summary statistics + BENCH_*.json emission
// ---------------------------------------------------------------------------

struct SampleStats {
  double mean = 0.0, p50 = 0.0, p90 = 0.0;
};

inline SampleStats stats(std::vector<double> samples) {
  SampleStats s;
  if (samples.empty()) return s;
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  const auto quantile = [&samples](double q) {
    const double pos = q * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  s.p50 = quantile(0.5);
  s.p90 = quantile(0.9);
  return s;
}

/// Collects per-config scalar fields and writes BENCH_<name>.json in the
/// working directory — the machine-readable perf record tracked across PRs:
///   {"bench": "<name>", "configs": [{"name": "...", "<field>": v, ...}]}
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(const std::string& config,
           std::vector<std::pair<std::string, double>> fields) {
    configs_.emplace_back(config, std::move(fields));
  }

  /// Convenience: the standard iteration-time block.
  void add_timing(const std::string& config, const SampleStats& s,
                  double overlap_fraction,
                  std::vector<std::pair<std::string, double>> extra = {}) {
    std::vector<std::pair<std::string, double>> fields{
        {"mean_s", s.mean},
        {"p50_s", s.p50},
        {"p90_s", s.p90},
        {"overlap_fraction", overlap_fraction}};
    fields.insert(fields.end(), extra.begin(), extra.end());
    add(config, std::move(fields));
  }

  /// Timing block with the per-iteration bytes-on-wire alongside the times,
  /// so compression wins show up in the cross-PR BENCH_*.json trajectory
  /// (wire == raw whenever the config runs lossless).
  void add_timing(const std::string& config, const SampleStats& s,
                  double overlap_fraction, std::size_t wire_bytes_per_iter,
                  std::size_t raw_bytes_per_iter,
                  std::vector<std::pair<std::string, double>> extra = {}) {
    extra.insert(extra.begin(),
                 {{"wire_bytes_per_iter",
                   static_cast<double>(wire_bytes_per_iter)},
                  {"raw_bytes_per_iter",
                   static_cast<double>(raw_bytes_per_iter)}});
    add_timing(config, s, overlap_fraction, std::move(extra));
  }

  /// The document BENCH_<name>.json will hold — strict JSON regardless of
  /// locale (util::format_double is locale-free) and of the field values
  /// (NaN/Inf become null; JSON has no tokens for them).
  std::string to_json() const {
    std::string out = "{\n  \"bench\": " + util::json_string(bench_name_) +
                      ",\n  \"configs\": [";
    for (std::size_t i = 0; i < configs_.size(); ++i) {
      out += (i == 0 ? "" : ",");
      out += "\n    {\"name\": " + util::json_string(configs_[i].first);
      for (const auto& [key, value] : configs_[i].second) {
        out += ", " + util::json_string(key) + ": " + util::json_number(value);
      }
      out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  /// Writes BENCH_<name>.json; prints the path.  Throws on I/O failure.
  void write() const {
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      throw std::runtime_error("BenchJson: cannot open " + path);
    }
    const std::string doc = to_json();
    const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    if (written != doc.size()) {
      throw std::runtime_error("BenchJson: short write to " + path);
    }
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      configs_;
};

inline void print_header(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void print_row_divider(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Simple fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_cells = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : "";
        std::printf("%-*s  ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::putchar('\n');
    };
    print_cells(columns_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    print_row_divider(static_cast<int>(total));
    for (const auto& row : rows_) print_cells(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string seconds(double s) { return fmt("%.4f", s); }
inline std::string millis(double s) { return fmt("%.1f", s * 1e3); }
inline std::string mega(double x) { return fmt("%.1f", x / 1e6); }

}  // namespace spdkfac::bench
