// Fig. 12 — comparison of inverse-phase placement policies on the simulated
// 64-GPU cluster: Non-Dist (every GPU inverts everything, no communication),
// Seq-Dist (round-robin CTs, the MPD-KFAC scheme of [13,20,22]) and the
// paper's LBP (Algorithm 1 with CT/NCT typing).  Reports the exposed
// InverseComp / InverseComm breakdown of the inverse phase plus Algorithm
// 1's own Eq. (21) prediction and placement statistics.
#include "bench_util.hpp"
#include "sched/placement.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Fig. 12", "Inverse placement policies, 64 GPUs");

  const auto& cal = bench::cal64();
  const std::vector<std::pair<const char*, sim::InverseMode>> variants{
      {"Non-Dist", sim::InverseMode::kLocalAll},
      {"Seq-Dist", sim::InverseMode::kSeqDist},
      {"LBP", sim::InverseMode::kLBP},
  };

  bench::Table table({"Model", "Policy", "InverseComp", "InverseComm", "Sum",
                      "#NCT", "#CT"});
  for (const auto& spec : models::paper_models()) {
    for (const auto& [name, mode] : variants) {
      sim::AlgorithmConfig cfg = sim::AlgorithmConfig::dkfac();
      cfg.inverse = mode;
      cfg.name = name;
      const auto res =
          simulate_iteration(spec, spec.default_batch, cal, cfg);
      table.add_row(
          {spec.name, name, bench::seconds(res.breakdown.inverse_comp),
           bench::seconds(res.breakdown.inverse_comm),
           bench::seconds(res.breakdown.inverse_comp +
                          res.breakdown.inverse_comm),
           std::to_string(res.placement.num_ncts()),
           std::to_string(res.placement.num_cts())});
    }
  }
  table.print();

  std::printf("\nAlgorithm 1's own Eq. (21) prediction for LBP:\n");
  bench::Table predict({"Model", "predicted max (s)", "bottleneck comp (s)",
                        "bottleneck comm (s)"});
  for (const auto& spec : models::paper_models()) {
    const auto dims = spec.factor_dims();
    const auto placement =
        sched::lbp_place(dims, 64, cal.inverse, cal.bcast_fabric);
    const auto cost =
        sched::predict_cost(placement, dims, cal.inverse, cal.bcast_fabric);
    predict.add_row({spec.name, bench::seconds(cost.max_seconds),
                     bench::seconds(cost.bottleneck_comp),
                     bench::seconds(cost.bottleneck_comm)});
  }
  predict.print();
  std::printf(
      "\nPaper shape: LBP wins on every model (10-62%%); Seq-Dist is worse\n"
      "than Non-Dist on DenseNet-201 (many small tensors, broadcast-bound).\n");
  return 0;
}
