// Microkernel throughput: GFLOP/s for every hot-path kernel at each
// runtime-dispatchable ISA level (scalar vs AVX2/FMA), across the factor
// sizes the optimizer actually sees, plus the buffer arena's
// copies-eliminated accounting from a live 2-rank run.  Emits
// BENCH_kernels.json for cross-PR tracking; the headline acceptance number
// is the factor+inverse speedup of the best level over scalar.
//
// All kernel timings are single-threaded (the ambient exec context is
// serial here), so they measure the raw microkernel — the executor's
// chunked parallelism multiplies on top and is benched elsewhere
// (bench_overlap, bench_runtime).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/linalg.hpp"
#include "tensor/random.hpp"

using namespace spdkfac;
namespace kernels = tensor::kernels;

namespace {

/// Seconds per call, self-calibrating rep count (>= ~30 ms per sample).
template <typename F>
double time_call(F&& f) {
  f();  // warm-up (and first-touch of every buffer)
  int reps = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) f();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (dt >= 0.03) return dt / static_cast<double>(reps);
    reps = dt <= 1e-6 ? reps * 64 : reps * 4;
  }
}

struct KernelSample {
  double seconds = 0.0;
  double flops = 0.0;
  double gflops() const { return flops / seconds / 1e9; }
};

std::vector<double> random_vec(std::size_t n, tensor::Rng& rng) {
  std::vector<double> v(n);
  tensor::fill_normal(v, rng);
  return v;
}

KernelSample bench_gemm_nn(const kernels::KernelTable& kt, std::size_t d) {
  tensor::Rng rng(1);
  const auto a = random_vec(d * d, rng);
  const auto b = random_vec(d * d, rng);
  auto c = random_vec(d * d, rng);
  KernelSample s;
  s.flops = 2.0 * static_cast<double>(d) * d * d;
  s.seconds = time_call([&] {
    kt.gemm_nn(d, d, d, a.data(), d, b.data(), d, c.data(), d);
  });
  return s;
}

KernelSample bench_gemm_tn(const kernels::KernelTable& kt, std::size_t d) {
  // The factor construction shape: A^T * A with K activation rows.
  tensor::Rng rng(2);
  const std::size_t K = 64;
  const auto a = random_vec(K * d, rng);
  auto c = random_vec(d * d, rng);
  KernelSample s;
  s.flops = 2.0 * static_cast<double>(K) * d * d;
  s.seconds = time_call([&] {
    kt.gemm_tn(d, K, d, a.data(), d, a.data(), d, c.data(), d);
  });
  return s;
}

KernelSample bench_dot(const kernels::KernelTable& kt, std::size_t n) {
  tensor::Rng rng(3);
  const auto x = random_vec(n, rng);
  const auto y = random_vec(n, rng);
  KernelSample s;
  s.flops = 2.0 * static_cast<double>(n);
  double sink = 0.0;
  s.seconds = time_call([&] { sink += kt.dot(x.data(), y.data(), n); });
  if (sink == 42.0) std::printf("%f", sink);  // defeat dead-code elimination
  return s;
}

KernelSample bench_ema(const kernels::KernelTable& kt, std::size_t n) {
  tensor::Rng rng(4);
  auto state = random_vec(n, rng);
  const auto fresh = random_vec(n, rng);
  KernelSample s;
  s.flops = 3.0 * static_cast<double>(n);  // two muls + add per element
  s.seconds =
      time_call([&] { kt.ema(state.data(), fresh.data(), n, 0.95); });
  return s;
}

KernelSample bench_spd_inverse(std::size_t d) {
  // Routed through linalg (Cholesky + two triangular solve sweeps), which
  // pulls its dot products from the *active* table — force() selects it.
  tensor::Rng rng(5);
  const tensor::Matrix a = tensor::random_spd(d, rng);
  KernelSample s;
  s.flops = tensor::spd_inverse_flops(d);
  tensor::Matrix inv;
  s.seconds = time_call([&] { inv = tensor::spd_inverse(a); });
  return s;
}

KernelSample bench_transpose(const kernels::KernelTable& kt, std::size_t d) {
  tensor::Rng rng(6);
  const auto in = random_vec(d * d, rng);
  std::vector<double> out(d * d);
  KernelSample s;
  s.flops = static_cast<double>(d) * d;  // elements moved (not real flops)
  s.seconds = time_call(
      [&] { kt.transpose(in.data(), d, d, d, out.data(), d); });
  return s;
}

/// Copies-eliminated accounting from a real 2-rank step (rank 0's arena).
struct ArenaReport {
  double bytes_saved_per_step = 0.0;
  double slab_bytes = 0.0;
};

ArenaReport measure_arena() {
  ArenaReport report;
  comm::Cluster::launch(2, [&](comm::Communicator& comm) {
    tensor::Rng init(7);
    const std::size_t widths[] = {32, 64, 48, 10};
    nn::Sequential model = nn::make_mlp(widths, init);
    auto layers = model.preconditioned_layers();
    core::DistKfacOptions opts;
    opts.lr = 0.05;
    opts.damping = 3e-2;
    core::DistKfacOptimizer optimizer(layers, comm, opts);
    nn::SyntheticClassification data(10, 32, 1, 8);
    tensor::Rng shard(100 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < 3; ++s) {
      auto batch = data.sample(8, shard);
      nn::Tensor4D flat(batch.inputs.n, 32, 1, 1);
      flat.data = batch.inputs.data;
      loss.forward(model.forward(flat), batch.labels);
      model.backward(loss.backward());
      optimizer.step();
    }
    if (comm.rank() == 0) {
      report.bytes_saved_per_step =
          static_cast<double>(optimizer.arena_bytes_saved_per_step());
      report.slab_bytes = static_cast<double>(
          optimizer.arena().capacity_doubles() * sizeof(double));
    }
  });
  return report;
}

}  // namespace

int main() {
  bench::print_header("Kernels",
                      "Microkernel GFLOP/s per ISA level + arena savings");

  std::vector<kernels::Isa> levels{kernels::Isa::kScalar};
  if (kernels::supported(kernels::Isa::kAvx2)) {
    levels.push_back(kernels::Isa::kAvx2);
  } else {
    std::printf("note: AVX2+FMA not available; scalar level only\n");
  }

  const std::size_t sizes[] = {64, 128, 256};
  bench::BenchJson json("kernels");
  bench::Table table({"Kernel", "d", "ISA", "GFLOP/s", "us/call"});

  // factor+inverse seconds per (size, level) for the headline speedup.
  std::vector<std::vector<double>> hot_path(levels.size());

  for (std::size_t li = 0; li < levels.size(); ++li) {
    const kernels::Isa level = levels[li];
    const kernels::KernelTable& kt = kernels::table(level);
    kernels::force(level);  // spd_inverse reads the active table
    const char* isa = kernels::to_string(level);

    for (const std::size_t d : sizes) {
      struct Entry {
        const char* name;
        KernelSample sample;
      };
      const Entry entries[] = {
          {"gemm_nn", bench_gemm_nn(kt, d)},
          {"gemm_tn", bench_gemm_tn(kt, d)},
          {"spd_inverse", bench_spd_inverse(d)},
          {"transpose", bench_transpose(kt, d)},
      };
      for (const Entry& e : entries) {
        table.add_row({e.name, std::to_string(d), isa,
                       bench::fmt("%.2f", e.sample.gflops()),
                       bench::fmt("%.1f", e.sample.seconds * 1e6)});
        json.add(std::string(e.name) + "/d=" + std::to_string(d) + "/" + isa,
                 {{"gflops", e.sample.gflops()},
                  {"seconds_per_call", e.sample.seconds}});
      }
      // The single-rank factor+inverse hot path: factor GEMM + SPD inverse.
      hot_path[li].push_back(entries[1].sample.seconds +
                             entries[2].sample.seconds);
    }

    const KernelSample dot = bench_dot(kt, 16384);
    const KernelSample ema = bench_ema(kt, 128 * 128);
    table.add_row({"dot", "16384", isa, bench::fmt("%.2f", dot.gflops()),
                   bench::fmt("%.1f", dot.seconds * 1e6)});
    table.add_row({"ema", "16384", isa, bench::fmt("%.2f", ema.gflops()),
                   bench::fmt("%.1f", ema.seconds * 1e6)});
    json.add(std::string("dot/n=16384/") + isa,
             {{"gflops", dot.gflops()}, {"seconds_per_call", dot.seconds}});
    json.add(std::string("ema/n=16384/") + isa,
             {{"gflops", ema.gflops()}, {"seconds_per_call", ema.seconds}});
  }
  kernels::force(kernels::best_supported());
  table.print();

  if (levels.size() > 1) {
    std::printf("\nfactor+inverse speedup (%s over scalar):\n",
                kernels::to_string(levels.back()));
    for (std::size_t si = 0; si < std::size(sizes); ++si) {
      const double speedup = hot_path[0][si] / hot_path.back()[si];
      std::printf("  d=%zu: %.2fx\n", sizes[si], speedup);
      json.add("speedup/factor_inverse/d=" + std::to_string(sizes[si]),
               {{"best_over_scalar", speedup}});
    }
  }

  const ArenaReport arena = measure_arena();
  std::printf("\narena (2 ranks, 4-layer MLP): %.0f bytes/step copies "
              "eliminated, %.0f-byte slab\n",
              arena.bytes_saved_per_step, arena.slab_bytes);
  json.add("arena/world=2",
           {{"copies_eliminated_bytes_per_step", arena.bytes_saved_per_step},
            {"slab_bytes", arena.slab_bytes}});

  json.write();
  return 0;
}
