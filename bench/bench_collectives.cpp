// Collective algorithm sweep: message size x world size x topology.
//
// For each cluster shape, prices one all-reduce of every algorithm in the
// library across message sizes (the paper's Fig. 7 grid extended downwards
// to the latency-bound region), marks the selector's choice, and verifies
// the acceptance invariant: the chosen algorithm is never priced worse
// than the always-ring baseline.  A second section runs the paper's
// measure-then-fit workflow on this machine's in-process cluster
// (perf::fit_selector) and reports the fitted per-algorithm terms, and a
// third simulates full SPD-KFAC iterations (ResNet-50, batch 32) with ring
// vs auto-selected collectives per topology.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "perf/measure.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

using namespace spdkfac;

namespace {

std::string shape_name(const comm::Topology& topo) {
  return std::to_string(topo.nodes) + "x" + std::to_string(topo.gpus_per_node) +
         " (P=" + std::to_string(topo.world_size()) + ")";
}

void sweep_topology(const comm::Topology& topo) {
  const comm::AlgorithmSelector sel(topo);
  std::printf("\nTopology %s — predicted all-reduce cost (ms), * = chosen\n",
              shape_name(topo).c_str());
  bench::Table table({"elements", "ring", "halving-doubling", "flat-tree",
                      "hierarchical", "chosen"});
  bool auto_ok = true;
  for (std::size_t m = 1; m <= (std::size_t{1} << 26); m <<= 3) {
    const comm::AllReduceAlgo chosen = sel.choose(m);
    std::vector<std::string> row{bench::fmt("%.0f", static_cast<double>(m))};
    for (comm::AllReduceAlgo algo : comm::kAllReduceAlgos) {
      if (!sel.available(algo)) {
        row.push_back("-");
        continue;
      }
      std::string cell = bench::fmt("%.3f", sel.cost(algo, m) * 1e3);
      if (algo == chosen) cell += " *";
      row.push_back(std::move(cell));
    }
    row.push_back(comm::to_string(chosen));
    table.add_row(std::move(row));
    auto_ok &= sel.best_cost(m) <= sel.cost(comm::AllReduceAlgo::kRing, m);
  }
  table.print();
  std::printf("auto <= ring at every size: %s\n", auto_ok ? "yes" : "NO");
}

void fitted_selector_section() {
  const comm::Topology topo = comm::Topology::multi_node(2, 2);
  const std::vector<std::size_t> sizes{1 << 10, 1 << 12, 1 << 14, 1 << 16,
                                       1 << 18};
  std::printf(
      "\n[Local] fitted selector on the in-process cluster, topology %s\n",
      shape_name(topo).c_str());
  const comm::AlgorithmSelector fitted = perf::fit_selector(topo, sizes);
  bench::Table table({"algorithm", "fitted alpha (s)", "fitted beta (s/elem)",
                      "t(64K) ms"});
  for (comm::AllReduceAlgo algo : comm::kAllReduceAlgos) {
    if (!fitted.available(algo)) continue;
    const comm::LinkModel term = fitted.term(algo);
    table.add_row({comm::to_string(algo), bench::fmt("%.3e", term.alpha),
                   bench::fmt("%.3e", term.beta),
                   bench::fmt("%.3f", fitted.cost(algo, 1 << 16) * 1e3)});
  }
  table.print();
  std::printf("fitted choice at 1K: %s, at 256K: %s\n",
              comm::to_string(fitted.choose(1 << 10)),
              comm::to_string(fitted.choose(1 << 18)));
}

void iteration_section() {
  const models::ModelSpec model = models::resnet50();
  std::printf("\nSimulated SPD-KFAC iteration (ResNet-50, batch 32): ring vs "
              "auto-selected collectives\n");
  bench::Table table({"topology", "ring (ms)", "auto (ms)", "speedup"});
  for (const comm::Topology& topo :
       {comm::Topology::flat(16), comm::Topology::flat(64),
        comm::Topology::multi_node(2, 4), comm::Topology::multi_node(4, 8),
        comm::Topology::multi_node(8, 8)}) {
    const auto cal = perf::ClusterCalibration::for_topology(topo);
    sim::AlgorithmConfig ring = sim::AlgorithmConfig::spd_kfac();
    sim::AlgorithmConfig autosel = ring;
    autosel.collective_algo = comm::AllReduceAlgo::kAuto;
    const double t_ring = sim::iteration_time(model, 32, cal, ring);
    const double t_auto = sim::iteration_time(model, 32, cal, autosel);
    table.add_row({shape_name(topo), bench::millis(t_ring),
                   bench::millis(t_auto),
                   bench::fmt("%.2fx", t_ring / t_auto)});
  }
  table.print();
}

}  // namespace

int main() {
  bench::print_header("Collectives",
                      "Topology-aware all-reduce algorithm library");
  for (const comm::Topology& topo :
       {comm::Topology::flat(4), comm::Topology::flat(12),
        comm::Topology::flat(64), comm::Topology::multi_node(2, 2),
        comm::Topology::multi_node(4, 8), comm::Topology::multi_node(8, 8)}) {
    sweep_topology(topo);
  }
  fitted_selector_section();
  iteration_section();
  return 0;
}
