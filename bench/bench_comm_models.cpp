// Fig. 7 — communication models of all-reduce and broadcast.
//
// The paper measures NCCL all-reduce / broadcast on its 64-GPU InfiniBand
// testbed over message sizes in [1M, 512M] elements and fits Eq. (14) /
// Eq. (27), obtaining alpha_ar = 1.22e-2, beta_ar = 1.45e-9 and
// alpha_bcast = 1.59e-2, beta_bcast = 7.85e-10.  We reproduce the same
// workflow on this machine's in-process thread cluster: measure, fit,
// report measured-vs-predicted and the fit's R^2, and print the paper's
// constants next to the predicted series for its message-size grid.
#include <cmath>

#include "bench_util.hpp"
#include "perf/measure.hpp"
#include "perf/models.hpp"

using namespace spdkfac;

namespace {

void report(const char* title, const std::vector<perf::Sample>& samples) {
  const perf::LinearModel fit = perf::fit_comm_model(samples);
  std::vector<double> predicted, observed;
  bench::Table table({"elements", "measured (ms)", "fitted (ms)"});
  for (const auto& s : samples) {
    predicted.push_back(fit(s.x));
    observed.push_back(s.seconds);
    table.add_row({bench::fmt("%.0f", s.x), bench::millis(s.seconds),
                   bench::millis(fit(s.x))});
  }
  std::printf("\n%s: fitted alpha = %.3e s, beta = %.3e s/element, R^2 = %.4f\n",
              title, fit.alpha, fit.beta,
              perf::r_squared(predicted, observed));
  table.print();
}

}  // namespace

int main() {
  bench::print_header("Fig. 7", "All-reduce / broadcast communication models");

  // --- local measurement on the in-process cluster (CPU substitute) ------
  const std::vector<std::size_t> sizes{1 << 12, 1 << 14, 1 << 16, 1 << 18,
                                       1 << 20};
  const int world = 4;
  std::printf("\n[Local] in-process cluster, %d workers (thread transport)\n",
              world);
  report("All-reduce (Eq. 14)",
         perf::measure_allreduce_times(sizes, world, /*runs=*/3, /*warmup=*/1));
  report("Broadcast (Eq. 27)",
         perf::measure_broadcast_times(sizes, world, 3, 1));

  // --- the paper's fitted constants over its message grid ----------------
  const auto& cal = bench::cal64();
  std::printf(
      "\n[Paper] 64x RTX2080Ti over 100Gb/s InfiniBand (published fits):\n"
      "  all-reduce: alpha = 1.22e-2 s, beta = 1.45e-9 s/element\n"
      "  broadcast : alpha = 1.59e-2 s, beta = 7.85e-10 s/element\n");
  bench::Table table({"elements (M)", "all-reduce (s)", "broadcast (s)"});
  for (double m = 1e6; m <= 512e6; m *= 4) {
    table.add_row({bench::fmt("%.0f", m / 1e6),
                   bench::seconds(cal.allreduce.time(
                       static_cast<std::size_t>(m))),
                   bench::seconds(cal.broadcast.time_elements(
                       static_cast<std::size_t>(m)))});
  }
  table.print();
  std::printf(
      "\nShape check: ~0.74 s to all-reduce 5e8 elements (Fig. 7a) and\n"
      "~0.41 s to broadcast them (Fig. 7b) on the paper's cluster.\n");
  return 0;
}
