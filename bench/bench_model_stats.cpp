// Table II — DNN details: parameters, preconditioned layers, per-GPU batch
// size, and the packed upper-triangle element totals of the Kronecker
// factors A and G.
//
// Paper reference values (millions):
//   ResNet-50     25.6   54   32    62.3   14.6
//   ResNet-152    60.2  156    8   162.0   32.9
//   DenseNet-201  20.0  201   16   131.0   18.0 (*)
//   Inception-v4  42.7  150   16   116.4    4.7
// (*) our architecture-derived sum(G) is 1.81M; the 10x gap against a
//     matching sum(A) strongly suggests a decimal typo in the paper.
#include "bench_util.hpp"
#include "models/model_spec.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Table II", "DNN details for experiments");

  bench::Table table({"Model", "# Param (M)", "# Layers", "Batch",
                      "# As (M)", "# Gs (M)"});
  for (const auto& spec : models::paper_models()) {
    table.add_row({spec.name,
                   bench::mega(static_cast<double>(spec.total_params())),
                   std::to_string(spec.num_layers()),
                   std::to_string(spec.default_batch),
                   bench::mega(static_cast<double>(spec.total_a_elements())),
                   bench::mega(static_cast<double>(spec.total_g_elements()))});
  }
  table.print();

  std::printf(
      "\nPaper Table II: 25.6/54/32/62.3/14.6, 60.2/156/8/162.0/32.9,\n"
      "20.0/201/16/131.0/18.0, 42.7/150/16/116.4/4.7.\n"
      "All cells match within 3%% except DenseNet-201 sum(G): the paper\n"
      "prints 18.0M where the architecture yields 1.81M (see\n"
      "docs/ARCHITECTURE.md, \"Modeling notes\").\n");
  return 0;
}
