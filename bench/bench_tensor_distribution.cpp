// Fig. 3 — Kronecker-factor tensor size distribution: number of factors per
// decade of communicated elements (packed upper triangle) for each of the
// four CNNs.  The paper's scatter plot spans ~1e3 to ~1e7 elements; the
// histogram below reports the same distribution in text form, plus the
// extremes quoted in Section IV-A for ResNet-50 (2,080 and 10,619,136).
#include <algorithm>
#include <cmath>
#include <map>

#include "bench_util.hpp"
#include "models/model_spec.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Fig. 3", "Tensor size distribution (packed elements)");

  const std::vector<std::pair<std::size_t, std::size_t>> buckets{
      {0, 1000},          {1000, 10'000},        {10'000, 100'000},
      {100'000, 1000'000}, {1000'000, 10'000'000}, {10'000'000, 100'000'000},
  };
  bench::Table table({"Model", "<1e3", "1e3-1e4", "1e4-1e5", "1e5-1e6",
                      "1e6-1e7", ">=1e7", "min", "max", "total"});
  for (const auto& spec : models::paper_models()) {
    const auto sizes = spec.factor_packed_sizes();
    std::vector<std::size_t> counts(buckets.size(), 0);
    for (std::size_t s : sizes) {
      for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (s >= buckets[b].first && s < buckets[b].second) {
          ++counts[b];
          break;
        }
      }
    }
    table.add_row({spec.name, std::to_string(counts[0]),
                   std::to_string(counts[1]), std::to_string(counts[2]),
                   std::to_string(counts[3]), std::to_string(counts[4]),
                   std::to_string(counts[5]),
                   std::to_string(*std::min_element(sizes.begin(), sizes.end())),
                   std::to_string(*std::max_element(sizes.begin(), sizes.end())),
                   std::to_string(sizes.size())});
  }
  table.print();
  std::printf(
      "\nPaper Section IV-A: ResNet-50's smallest factor carries 2,080\n"
      "elements, the largest 10,619,136; small tensors underutilize the\n"
      "network (motivating dynamic tensor fusion).\n");
  return 0;
}
