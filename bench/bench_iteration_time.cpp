// Table III — average iteration wall-clock time of D-KFAC / MPD-KFAC /
// SPD-KFAC on the simulated 64-GPU cluster, with the paper's speedup
// columns SP1 = D-KFAC/SPD-KFAC and SP2 = MPD-KFAC/SPD-KFAC.
//
// Paper reference (seconds): ResNet-50 0.8525/0.7635/0.6755 (1.26, 1.13);
// ResNet-152 1.5807/1.3933/1.1689 (1.35, 1.19); DenseNet-201
// 1.4964/1.5340/1.3615 (1.10, 1.13); Inception-v4 1.1857/1.1473/0.9907
// (1.20, 1.16).  Absolute values differ (their testbed, our simulator);
// the shape — SPD-KFAC fastest everywhere, 10-35% over D-KFAC and
// 13-19%-scale over MPD-KFAC, MPD-KFAC losing to D-KFAC on DenseNet-201 —
// is the reproduction target.
#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Table III",
                      "Average iteration time (s) and speedups, 64 GPUs");

  const auto& cal = bench::cal64();
  bench::BenchJson json("iteration_time");
  const auto record = [&](const models::ModelSpec& spec,
                          const sim::AlgorithmConfig& cfg) {
    const auto res = simulate_iteration(spec, spec.default_batch, cal, cfg);
    // The simulator is deterministic: mean == p50 == p90 == the priced
    // makespan; the overlap fraction is the hidden factor-comm share.
    json.add_timing(spec.name + "/" + cfg.name,
                    {res.total, res.total, res.total},
                    res.factor_comm_hidden_fraction());
    return res.total;
  };

  bench::Table table(
      {"Model", "D-KFAC", "MPD-KFAC", "SPD-KFAC", "SP1", "SP2"});
  for (const auto& spec : models::paper_models()) {
    const double dkfac = record(spec, sim::AlgorithmConfig::dkfac());
    const double mpd = record(spec, sim::AlgorithmConfig::mpd_kfac());
    const double spd = record(spec, sim::AlgorithmConfig::spd_kfac());
    table.add_row({spec.name, bench::seconds(dkfac), bench::seconds(mpd),
                   bench::seconds(spd), bench::fmt("%.2f", dkfac / spd),
                   bench::fmt("%.2f", mpd / spd)});
  }
  table.print();
  std::printf(
      "\nPaper Table III: SP1 in 1.10-1.35 (\"10%%-35%% over D-KFAC\"),\n"
      "SP2 in 1.13-1.19; MPD-KFAC slower than D-KFAC on DenseNet-201.\n");
  json.write();
  return 0;
}
