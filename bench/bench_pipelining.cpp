// Fig. 10 — benefits of pipelining the computation and communication of
// Kronecker factors.  For each model, reports FactorComp plus the
// *non-overlapped* FactorComm of four schemes:
//   Naive      — all A factors in one op overlapped with the backward pass,
//                G factors in one op after it;
//   LW w/o TF  — one all-reduce per factor, no fusion;
//   LW w/ TTF  — layer-wise with Horovod's 64 MiB threshold fusion;
//   SP w/ OTF  — SPD-KFAC's optimal tensor fusion (Eq. 15 objective).
#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header(
      "Fig. 10",
      "Factor computation + non-overlapped factor communication (s)");

  const auto& cal = bench::cal64();
  const std::vector<std::pair<const char*, sim::FactorCommMode>> variants{
      {"Naive", sim::FactorCommMode::kNaive},
      {"LW w/o TF", sim::FactorCommMode::kLayerWise},
      {"LW w/ TTF", sim::FactorCommMode::kThresholdFuse},
      {"SP w/ OTF", sim::FactorCommMode::kOptimalFuse},
  };

  bench::Table table({"Model", "Scheme", "FactorComp", "FactorComm (exposed)",
                      "Sum", "Hidden frac"});
  for (const auto& spec : models::paper_models()) {
    for (const auto& [name, mode] : variants) {
      sim::AlgorithmConfig cfg = sim::AlgorithmConfig::dkfac();
      cfg.factor_comm = mode;
      cfg.name = name;
      const auto res =
          simulate_iteration(spec, spec.default_batch, cal, cfg);
      table.add_row({spec.name, name, bench::seconds(res.breakdown.factor_comp),
                     bench::seconds(res.breakdown.factor_comm),
                     bench::seconds(res.breakdown.factor_comp +
                                    res.breakdown.factor_comm),
                     bench::fmt("%.2f", res.factor_comm_hidden_fraction())});
    }
  }
  table.print();
  std::printf(
      "\nPaper shape: LW w/o TF is *worse* than Naive (per-factor startup\n"
      "latency dominates); threshold fusion improves on Naive; SP w/ OTF is\n"
      "best, hiding 50-84%% of the factor-aggregation communication.\n");
  return 0;
}
