// Fig. 2 and Fig. 9 — iteration time breakdowns.
//
// Fig. 2: ResNet-50 (batch 32) under SGD / KFAC on one GPU and S-SGD /
// D-KFAC / MPD-KFAC on the simulated 64-GPU cluster.
// Fig. 9: breakdowns of D-KFAC / MPD-KFAC / SPD-KFAC for all four CNNs.
//
// Categories follow the paper's legend: FF&BP, GradComm, FactorComp,
// FactorComm, InverseComp, InverseComm; communication time is attributed
// only where it is not hidden under computation, so the six categories sum
// to the iteration time.
#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

using namespace spdkfac;

namespace {

void add_breakdown_row(bench::Table& table, const std::string& label,
                       const sim::IterationResult& res) {
  const sim::Breakdown& b = res.breakdown;
  table.add_row({label, bench::seconds(b.ff_bp), bench::seconds(b.grad_comm),
                 bench::seconds(b.factor_comp), bench::seconds(b.factor_comm),
                 bench::seconds(b.inverse_comp),
                 bench::seconds(b.inverse_comm), bench::seconds(res.total)});
}

bench::Table make_table() {
  return bench::Table({"Algorithm", "FF&BP", "GradComm", "FactorComp",
                       "FactorComm", "InverseComp", "InverseComm", "Total"});
}

}  // namespace

int main() {
  const auto& cal64 = bench::cal64();
  const auto cal1 = perf::ClusterCalibration::paper_fabric(1);

  bench::print_header(
      "Fig. 2", "Time breakdowns, ResNet-50 batch 32 (seconds/iteration)");
  {
    const auto spec = models::resnet50();
    bench::Table table = make_table();
    add_breakdown_row(table, "SGD (1 GPU)",
                      simulate_iteration(spec, 32, cal1,
                                         sim::AlgorithmConfig::sgd()));
    add_breakdown_row(
        table, "S-SGD (64)",
        simulate_iteration(spec, 32, cal64, sim::AlgorithmConfig::sgd()));
    add_breakdown_row(table, "KFAC (1 GPU)",
                      simulate_iteration(spec, 32, cal1,
                                         sim::AlgorithmConfig::kfac()));
    add_breakdown_row(
        table, "D-KFAC (64)",
        simulate_iteration(spec, 32, cal64, sim::AlgorithmConfig::dkfac()));
    add_breakdown_row(table, "MPD-KFAC (64)",
                      simulate_iteration(spec, 32, cal64,
                                         sim::AlgorithmConfig::mpd_kfac()));
    table.print();
    std::printf(
        "\nPaper shape: KFAC ~4x SGD on one GPU; D-KFAC adds heavy factor\n"
        "communication; MPD-KFAC cuts InverseComp (292 -> 51 ms in the\n"
        "paper) but pays InverseComm (~134 ms).\n");
  }

  bench::print_header("Fig. 9",
                      "Breakdowns of the distributed algorithms, 64 GPUs");
  for (const auto& spec : models::paper_models()) {
    std::printf("\n-- %s (batch %zu) --\n", spec.name.c_str(),
                spec.default_batch);
    bench::Table table = make_table();
    for (const sim::AlgorithmConfig& cfg :
         {sim::AlgorithmConfig::dkfac(), sim::AlgorithmConfig::mpd_kfac(),
          sim::AlgorithmConfig::spd_kfac()}) {
      add_breakdown_row(
          table, cfg.name,
          simulate_iteration(spec, spec.default_batch, cal64, cfg));
    }
    table.print();
  }
  std::printf(
      "\nPaper shape: SPD-KFAC hides most FactorComm and trades a little\n"
      "InverseComp for much smaller InverseComm; MPD-KFAC is slower than\n"
      "D-KFAC on DenseNet-201 due to broadcast overheads.\n");
  return 0;
}
