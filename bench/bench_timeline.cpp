// Fig. 1 — the task structure of one iteration, rendered as an ASCII
// timeline of the simulated streams on a small cluster (2 GPUs, a truncated
// ResNet-50 head) so the schedule is readable: S-SGD's WFBP gradient
// overlap, D-KFAC's bulk factor aggregation, and SPD-KFAC's pipelined
// factor communication plus distributed inverses.
#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Fig. 1", "Simulated iteration timelines (2 GPUs)");

  // A small model keeps the rendering legible: the first 8 preconditioned
  // layers of ResNet-50.
  models::ModelSpec spec = models::resnet50();
  spec.layers.resize(8);
  spec.name = "ResNet-50[0:8]";
  const auto cal = perf::ClusterCalibration::paper_fabric(2);

  for (const sim::AlgorithmConfig& cfg :
       {sim::AlgorithmConfig::sgd(), sim::AlgorithmConfig::dkfac(),
        sim::AlgorithmConfig::spd_kfac()}) {
    const auto res = simulate_iteration(spec, 32, cal, cfg);
    std::printf("\n-- %s (iteration %.4f s) --\n", cfg.name.c_str(),
                res.total);
    std::printf("%s", render_timeline(res.schedule, res.stream_names, 96)
                          .c_str());
  }
  std::printf(
      "\nCompare with Fig. 1: in S-SGD, gradient aggregation (g) overlaps\n"
      "the backward pass; in D-KFAC, factor aggregation (c) is exposed\n"
      "after the backward pass; in SPD-KFAC, factor aggregation rides\n"
      "along both passes and the inverse broadcasts (b) interleave with\n"
      "distributed inverse computation (I).\n");
  return 0;
}
