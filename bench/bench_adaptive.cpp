// Adaptive re-planning vs a frozen warm-up schedule (Section IV-A online
// profiling, made quantitative).
//
// Part 1 (modeled): a run whose compute timings drift across epochs — the
// cold warm-up iterations run factor builds several times slower than the
// settled steady state (clocks ramping, caches filling, cuDNN autotuning)
// — is priced twice per epoch: once with the schedule re-planned from that
// epoch's profile (the adaptive loop) and once with the warm-up schedule
// frozen (one-shot offline profiling).  Both are priced under the *same*
// epoch calibration, so the delta is pure schedule quality: the frozen
// plan was fused for wide pass gaps, and once the factors speed up its
// many small all-reduces pay the startup cost in a tail the pass can no
// longer hide.
//
// Part 2 (measured): a real in-process distributed run in live adaptive
// mode — online profiler + profile sync + plan cache — reporting per-step
// wall times, re-plan count, cache hit rate (steady state must hit), and
// the profiler's measured collective cost next to the planning model's
// prediction.
//
// Emits BENCH_adaptive.json.
#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "models/model_spec.hpp"
#include "sched/planner.hpp"
#include "sim/iteration.hpp"

using namespace spdkfac;

namespace {

constexpr int kWorld = 16;
constexpr std::size_t kBatch = 32;
// Factor-compute slowdown per epoch relative to the settled machine: the
// warm-up epoch is 6x slower, later epochs settle and then overshoot (the
// drift the frozen schedule never learns about).
constexpr double kWarmupDrift = 6.0;
constexpr double kDrift[] = {6.0, 2.0, 1.0, 0.5, 0.2};

perf::ClusterCalibration epoch_cal(double drift) {
  perf::ClusterCalibration cal = perf::ClusterCalibration::paper_fabric(kWorld);
  cal.compute.factor_flops_per_s /= drift;
  return cal;
}

}  // namespace

int main() {
  bench::print_header(
      "Adaptive", "Online profiling & re-planning vs a frozen warm-up plan");

  bench::BenchJson json("adaptive");
  const models::ModelSpec model = models::resnet50();

  // -------------------------------------------------------------------
  // Part 1: modeled schedule quality under profile drift.
  // -------------------------------------------------------------------
  sim::AlgorithmConfig cfg = sim::AlgorithmConfig::spd_kfac();
  const sched::PassTiming warmup_profile = sched::timing_from_model(
      model, kBatch, epoch_cal(kWarmupDrift).compute, /*second_order=*/true);

  std::printf("%s, batch %zu, P=%d, SPD-KFAC (optimal fusion + LBP)\n\n",
              model.name.c_str(), kBatch, kWorld);
  std::printf("  %-8s %-14s %-14s %-10s %-18s\n", "epoch", "adaptive (s)",
              "frozen (s)", "saved", "hidden comm a/f");
  for (std::size_t e = 0; e < std::size(kDrift); ++e) {
    const perf::ClusterCalibration cal = epoch_cal(kDrift[e]);
    const sched::PassTiming epoch_profile = sched::timing_from_model(
        model, kBatch, cal.compute, /*second_order=*/true);

    sim::AlgorithmConfig adaptive = cfg;
    adaptive.profile = epoch_profile;  // re-planned for this epoch
    sim::AlgorithmConfig frozen = cfg;
    frozen.profile = warmup_profile;  // epoch-0 schedule, never updated

    const sim::IterationResult a =
        sim::simulate_iteration(model, kBatch, cal, adaptive);
    const sim::IterationResult f =
        sim::simulate_iteration(model, kBatch, cal, frozen);
    const double saved = (f.total - a.total) / f.total;
    std::printf("  x%-7.2f %-14.4f %-14.4f %8.1f%%  %5.1f%% / %5.1f%%\n",
                kDrift[e], a.total, f.total, 100.0 * saved,
                100.0 * a.factor_comm_hidden_fraction(),
                100.0 * f.factor_comm_hidden_fraction());
    char drift_name[32];
    std::snprintf(drift_name, sizeof drift_name, "modeled_drift_x%g",
                  kDrift[e]);
    json.add(drift_name,
             {{"adaptive_s", a.total},
              {"frozen_s", f.total},
              {"saved_fraction", saved},
              {"adaptive_hidden", a.factor_comm_hidden_fraction()},
              {"frozen_hidden", f.factor_comm_hidden_fraction()}});
  }
  std::printf(
      "\n  (both columns priced under the epoch's calibration; the frozen\n"
      "   warm-up plan loses once the factors outrun the wide fusion gaps\n"
      "   it was built for)\n");

  // -------------------------------------------------------------------
  // Part 2: measured live-mode adaptivity on the in-process cluster.
  // -------------------------------------------------------------------
  bench::print_header("Adaptive/live",
                      "Measured: online profiler + plan cache, real cluster");
  constexpr int kSteps = 10;
  constexpr std::size_t kReplanInterval = 3;
  std::vector<double> step_seconds;
  std::size_t cache_hits = 0, cache_misses = 0, replans = 0, sync_ops = 0;
  double measured_per_element = 0.0;
  bench::DistTrainConfig train_cfg;  // the shared small-CNN harness shape
  train_cfg.world = 2;

  comm::Cluster::launch(train_cfg.world, [&](comm::Communicator& comm) {
    tensor::Rng init(4242);
    nn::Sequential net =
        nn::make_small_cnn(train_cfg.in_channels, train_cfg.image_hw,
                           train_cfg.conv1, train_cfg.conv2,
                           train_cfg.classes, init);
    auto layers = net.preconditioned_layers();
    core::DistKfacOptions opts;
    opts.strategy = core::DistStrategy::kSpdKfac;
    opts.replan_interval = kReplanInterval;
    opts.lr = 0.05;
    opts.damping = 0.1;
    core::DistKfacOptimizer optimizer(layers, comm, opts);

    nn::SyntheticClassification data(train_cfg.classes, train_cfg.in_channels,
                                     train_cfg.image_hw, 11);
    tensor::Rng shard(17 + comm.rank());
    nn::SoftmaxCrossEntropy loss;
    for (int s = 0; s < kSteps; ++s) {
      auto batch = data.sample(train_cfg.batch, shard);
      const auto t0 = std::chrono::steady_clock::now();
      const nn::PassHooks hooks = optimizer.pass_hooks();
      loss.forward(net.forward(batch.inputs, hooks), batch.labels);
      net.backward(loss.backward(), hooks);
      optimizer.step();
      if (comm.rank() == 0) {
        step_seconds.push_back(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
      }
    }
    if (comm.rank() == 0) {
      cache_hits = optimizer.plan_cache().hits();
      cache_misses = optimizer.plan_cache().misses();
      replans = optimizer.replan_count();
      measured_per_element =
          optimizer.profiler().collective_seconds_per_element();
      for (const auto& rec : optimizer.comm_records()) {
        if (rec.plan_task < 0) ++sync_ops;
      }
    }
  });

  const bench::SampleStats s = bench::stats(step_seconds);
  std::printf("  steps %d, replan every %zu: %zu re-plans, %zu sync ops\n",
              kSteps, kReplanInterval, replans, sync_ops);
  std::printf("  plan cache: %zu hits / %zu misses (steady state hits when\n"
              "  the quantized profile signature is stable)\n",
              cache_hits, cache_misses);
  std::printf("  step time mean %.4fs p50 %.4fs p90 %.4fs\n", s.mean, s.p50,
              s.p90);
  std::printf("  measured collective cost %.3g s/elem (planning model beta "
              "%.3g)\n",
              measured_per_element,
              core::DistKfacOptions{}.allreduce_model.model.beta);
  json.add("live_adaptive",
           {{"mean_step_s", s.mean},
            {"p50_step_s", s.p50},
            {"p90_step_s", s.p90},
            {"replans", static_cast<double>(replans)},
            {"profile_syncs", static_cast<double>(sync_ops)},
            {"cache_hits", static_cast<double>(cache_hits)},
            {"cache_misses", static_cast<double>(cache_misses)},
            {"measured_s_per_element", measured_per_element}});

  json.write();
  return 0;
}
