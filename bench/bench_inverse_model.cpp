// Fig. 8 — computation-time model of the damped SPD inverse.
//
// The paper benchmarks cuSolver Cholesky inverses for d in [64, 8192] on an
// RTX2080Ti and fits Eq. (26): t = alpha_inv * exp(beta_inv * d) with
// alpha_inv = 3.64e-3, beta_inv = 4.77e-4.  We reproduce the workflow on
// this CPU: measure damped inverses over a dimension sweep, fit the same
// exponential, and report measured vs fitted.  The paper's published curve
// and the simulator's cubic task-pricing law are printed alongside.
#include "bench_util.hpp"
#include "perf/measure.hpp"
#include "perf/models.hpp"

int main() {
  using namespace spdkfac;
  bench::print_header("Fig. 8", "Inverse computation time model");

  const std::vector<std::size_t> dims{32, 64, 96, 128, 192, 256, 384};
  const auto samples = perf::measure_inverse_times(dims, /*runs=*/2,
                                                   /*warmup=*/1);
  const perf::InverseModel fitted = perf::fit_inverse_model(samples);

  std::printf("\n[Local CPU] measured damped inverses and Eq. (26) fit:\n");
  std::printf("  fitted alpha_inv = %.3e s, beta_inv = %.3e /dim\n",
              fitted.alpha, fitted.beta);
  bench::Table local({"dim", "measured (ms)", "fitted (ms)"});
  for (const auto& s : samples) {
    local.add_row({bench::fmt("%.0f", s.x), bench::millis(s.seconds),
                   bench::millis(fitted.time(
                       static_cast<std::size_t>(s.x)))});
  }
  local.print();

  const auto paper_exp = perf::ClusterCalibration::fig8_inverse_model();
  const auto& cal = bench::cal64();
  std::printf(
      "\n[Paper] RTX2080Ti fit: alpha_inv = 3.64e-3, beta_inv = 4.77e-4\n"
      "vs the simulator's cubic law (matched to the same d = 8192 endpoint;\n"
      "the exponential's 3.64 ms floor over-prices small tensors — the\n"
      "paper's own 292 ms ResNet-50 total is below 108 x 3.64 ms):\n");
  bench::Table table({"dim", "Eq.(26) exp (ms)", "cubic law (ms)"});
  for (std::size_t d = 64; d <= 8192; d *= 2) {
    table.add_row({std::to_string(d), bench::millis(paper_exp.time(d)),
                   bench::millis(cal.inverse.time(d))});
  }
  table.print();
  std::printf("\nShape check: ~175 ms at d = 8192 on the paper's GPU.\n");
  return 0;
}
