// spdkfacd — run the distributed K-FAC optimizer as a long-lived service.
//
//   spdkfacd --socket=/tmp/spdkfacd.sock --world=4 --steps=100
//
// The daemon trains the bench harness's small CNN on an in-process cluster
// and serves live introspection/control on the ctl socket; drive it with
// spdkfacctl (status | profile | plan | cache | metrics | trace | replan |
// set k=v | step [n] | shutdown).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "comm/transport.hpp"
#include "core/dist_kfac.hpp"
#include "ctl/daemon.hpp"

namespace {

spdkfac::ctl::Daemon* g_daemon = nullptr;

void handle_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_shutdown();
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket=PATH] [--world=N] [--steps=N] [--oneshot]\n"
      "          [--strategy=spd-kfac|mpd-kfac|d-kfac] [--lr=X]\n"
      "          [--damping=X] [--replan-interval=N] [--posthoc]\n"
      "  --socket   ctl socket path (default $TMPDIR/spdkfacd.sock)\n"
      "  --world    in-process ranks (default 2)\n"
      "  --steps    steps queued at startup (default 0; queue live with\n"
      "             'spdkfacctl step N')\n"
      "  --oneshot  exit when the queued steps drain instead of serving\n",
      argv0);
}

bool parse_value(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  spdkfac::ctl::DaemonOptions opts;
  opts.socket_path = spdkfac::comm::default_tmp_dir() + "/spdkfacd.sock";
  try {
    for (int i = 1; i < argc; ++i) {
      std::string value;
      if (parse_value(argv[i], "--socket", value)) {
        opts.socket_path = value;
      } else if (parse_value(argv[i], "--world", value)) {
        opts.world = std::stoi(value);
      } else if (parse_value(argv[i], "--steps", value)) {
        opts.auto_steps = std::stoul(value);
      } else if (std::strcmp(argv[i], "--oneshot") == 0) {
        opts.run_until_shutdown = false;
      } else if (std::strcmp(argv[i], "--posthoc") == 0) {
        opts.hooked = false;
      } else if (parse_value(argv[i], "--strategy", value)) {
        if (value == "spd-kfac") {
          opts.optimizer.strategy = spdkfac::core::DistStrategy::kSpdKfac;
        } else if (value == "mpd-kfac") {
          opts.optimizer.strategy = spdkfac::core::DistStrategy::kMpdKfac;
        } else if (value == "d-kfac") {
          opts.optimizer.strategy = spdkfac::core::DistStrategy::kDKfac;
        } else {
          throw std::invalid_argument("unknown strategy: " + value);
        }
      } else if (parse_value(argv[i], "--lr", value)) {
        opts.optimizer.lr = std::stod(value);
      } else if (parse_value(argv[i], "--damping", value)) {
        opts.optimizer.damping = std::stod(value);
      } else if (parse_value(argv[i], "--replan-interval", value)) {
        opts.optimizer.replan_interval = std::stoul(value);
      } else if (std::strcmp(argv[i], "--help") == 0 ||
                 std::strcmp(argv[i], "-h") == 0) {
        usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "spdkfacd: unknown argument %s\n", argv[i]);
        usage(argv[0]);
        return 2;
      }
    }

    spdkfac::ctl::Daemon daemon(opts);
    g_daemon = &daemon;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::printf("spdkfacd: serving ctl on %s (world=%d, queued steps=%zu)\n",
                opts.socket_path.c_str(), opts.world, opts.auto_steps);
    std::fflush(stdout);
    daemon.run();
    g_daemon = nullptr;
    std::printf("spdkfacd: shut down after %zu step(s)\n",
                daemon.steps_completed());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spdkfacd: %s\n", e.what());
    return 1;
  }
}
