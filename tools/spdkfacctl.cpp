// spdkfacctl — drive a running spdkfacd over its ctl socket.
//
//   spdkfacctl [--socket=PATH] [--timeout=SECONDS] <command> [args...]
//
// Commands: status | profile | plan | cache | metrics | trace | replan |
//           set <tunable>=<value> | step [n] | shutdown
//
// The reply body prints to stdout verbatim (JSON for status/profile/cache,
// Prometheus text for metrics, a Chrome trace_event array for trace, plain
// text otherwise); errors print to stderr and exit 1.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "comm/transport.hpp"
#include "ctl/client.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket=PATH] [--timeout=SECONDS] <command> "
               "[args...]\n"
               "commands: status profile plan cache metrics trace replan\n"
               "          set <tunable>=<value>   step [n]   shutdown\n",
               argv0);
}

bool parse_value(const char* arg, const char* name, std::string& out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path =
      spdkfac::comm::default_tmp_dir() + "/spdkfacd.sock";
  double timeout_s = 5.0;
  std::string command;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string value;
      if (parse_value(argv[i], "--socket", value)) {
        socket_path = value;
      } else if (parse_value(argv[i], "--timeout", value)) {
        timeout_s = std::stod(value);
      } else if (std::strcmp(argv[i], "--help") == 0 ||
                 std::strcmp(argv[i], "-h") == 0) {
        usage(argv[0]);
        return 0;
      } else {
        if (!command.empty()) command += ' ';
        command += argv[i];
      }
    }
    if (command.empty()) {
      usage(argv[0]);
      return 2;
    }

    spdkfac::ctl::CtlClient client(socket_path, timeout_s);
    const spdkfac::ctl::Response resp = client.request(command);
    if (!resp.ok) {
      std::fprintf(stderr, "spdkfacctl: %s\n", resp.body.c_str());
      return 1;
    }
    std::fputs(resp.body.c_str(), stdout);
    if (!resp.body.empty() && resp.body.back() != '\n') {
      std::fputc('\n', stdout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spdkfacctl: %s\n", e.what());
    return 1;
  }
}
