// Distributed K-FAC on the worker cluster: four data-parallel workers
// train replicas of a small CNN on sharded synthetic data under each of the
// three strategies (D-KFAC, MPD-KFAC, SPD-KFAC), verifying that
//   * the final models are identical across workers (synchronous training),
//   * all three strategies produce the same numerics (the paper's central
//     correctness claim), and
//   * SPD-KFAC genuinely overlaps factor communication with computation
//     (shown via the async engine's operation records).
//
// By default the workers are threads of this process; --transport switches
// the cluster onto a process-per-rank backend — one OS process per worker
// talking over shared-memory rings or a Unix-domain socket mesh — without
// changing one digit of the output losses/weights (the multi-process
// quickstart of docs/ARCHITECTURE.md "Transports"):
//
//   $ ./examples/distributed_training                       # threads
//   $ ./examples/distributed_training --transport=shm       # processes, shm
//   $ ./examples/distributed_training --transport=socket    # processes, UDS
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "bench_util.hpp"
#include "tensor/linalg.hpp"

using namespace spdkfac;

namespace {

constexpr int kSteps = 6;

bench::DistTrainResult train(core::DistStrategy strategy,
                             comm::TransportKind transport) {
  // Hook mode (Fig. 6): factor and WFBP-gradient all-reduces are submitted
  // to the background engine *during* the passes.
  bench::DistTrainConfig cfg;
  cfg.strategy = strategy;
  cfg.transport = transport;
  cfg.steps = kSteps;
  cfg.image_hw = 8;
  cfg.conv1 = 4;
  cfg.conv2 = 8;
  cfg.classes = 4;
  cfg.init_seed = 1234;
  cfg.data_seed = 5;
  cfg.noise = 0.25;
  cfg.lr = 0.1;
  cfg.damping = 0.1;
  return bench::dist_train(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  comm::TransportKind transport = comm::TransportKind::kInProcess;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      try {
        transport = comm::transport_from_string(arg.substr(12));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--transport=inproc|shm|socket]\n", argv[0]);
      return 2;
    }
  }

  std::printf("Training a CNN on 4 %s workers (%s transport), %d steps...\n\n",
              transport == comm::TransportKind::kInProcess
                  ? "in-process"
                  : "process-per-rank",
              comm::to_string(transport), kSteps);
  const bench::DistTrainResult dkfac =
      train(core::DistStrategy::kDKfac, transport);
  const bench::DistTrainResult mpd =
      train(core::DistStrategy::kMpdKfac, transport);
  const bench::DistTrainResult spd =
      train(core::DistStrategy::kSpdKfac, transport);

  std::printf("strategy   final-loss   wall(s)   broadcast-CTs\n");
  std::printf("D-KFAC     %9.2e   %7.3f   %zu\n", dkfac.rank0_loss,
              dkfac.wall_seconds, dkfac.broadcast_cts);
  std::printf("MPD-KFAC   %9.2e   %7.3f   %zu\n", mpd.rank0_loss,
              mpd.wall_seconds, mpd.broadcast_cts);
  std::printf("SPD-KFAC   %9.2e   %7.3f   %zu\n", spd.rank0_loss,
              spd.wall_seconds, spd.broadcast_cts);

  double max_diff = 0.0;
  for (std::size_t l = 0; l < dkfac.rank0_weights.size(); ++l) {
    max_diff = std::max(max_diff,
                        tensor::max_abs_diff(dkfac.rank0_weights[l],
                                             spd.rank0_weights[l]));
    max_diff = std::max(max_diff,
                        tensor::max_abs_diff(mpd.rank0_weights[l],
                                             spd.rank0_weights[l]));
  }
  std::printf(
      "\nMax |weight difference| across strategies after %d steps: %.3e\n"
      "(only floating-point reassociation of the all-reduce; the paper:\n"
      "\"SPD-KFAC should generate identical numerical results ... as\n"
      "D-KFAC\").\n",
      kSteps, max_diff);
  return max_diff < 1e-8 ? 0 : 1;
}
