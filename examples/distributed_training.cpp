// Distributed K-FAC on the in-process cluster: four data-parallel workers
// train replicas of a small CNN on sharded synthetic data under each of the
// three strategies (D-KFAC, MPD-KFAC, SPD-KFAC), verifying that
//   * the final models are identical across workers (synchronous training),
//   * all three strategies produce the same numerics (the paper's central
//     correctness claim), and
//   * SPD-KFAC genuinely overlaps factor communication with computation
//     (shown via the async engine's operation records).
//
//   $ ./examples/distributed_training
#include <chrono>
#include <cstdio>
#include <mutex>

#include "comm/cluster.hpp"
#include "core/dist_kfac.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"
#include "tensor/matrix.hpp"

using namespace spdkfac;

namespace {

constexpr int kWorld = 4;
constexpr std::size_t kImage = 8, kClasses = 4, kBatch = 8;
constexpr int kSteps = 6;

struct RunResult {
  std::vector<tensor::Matrix> rank0_weights;
  double rank0_loss = 0.0;
  double seconds = 0.0;
  std::size_t comm_ops = 0;
};

RunResult train(core::DistStrategy strategy) {
  RunResult result;
  std::mutex mu;
  comm::Cluster::launch(kWorld, [&](comm::Communicator& comm) {
    tensor::Rng init_rng(1234);  // same seed => identical replicas
    nn::Sequential model =
        nn::make_small_cnn(1, kImage, 4, 8, kClasses, init_rng);
    auto layers = model.preconditioned_layers();

    core::DistKfacOptions options;
    options.strategy = strategy;
    options.lr = 0.1;
    options.damping = 0.1;
    core::DistKfacOptimizer optimizer(layers, comm, options);

    nn::SyntheticClassification data(kClasses, 1, kImage, /*seed=*/5, 0.25);
    tensor::Rng shard(100 + comm.rank());
    nn::SoftmaxCrossEntropy loss;

    const auto start = std::chrono::steady_clock::now();
    double last_loss = 0.0;
    for (int s = 0; s < kSteps; ++s) {
      nn::Batch batch = data.sample(kBatch, shard);
      // Hook mode (Fig. 6): factor and WFBP-gradient all-reduces are
      // submitted to the background engine *during* the passes.
      const nn::PassHooks hooks = optimizer.pass_hooks();
      last_loss =
          loss.forward(model.forward(batch.inputs, hooks), batch.labels);
      model.backward(loss.backward(), hooks);
      optimizer.step();
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    if (comm.rank() == 0) {
      std::lock_guard lock(mu);
      for (auto* l : layers) result.rank0_weights.push_back(l->weight());
      result.rank0_loss = last_loss;
      result.seconds = secs;
      result.comm_ops = optimizer.placement().num_cts();
    }
  });
  return result;
}

}  // namespace

int main() {
  std::printf("Training a CNN on %d in-process workers, %d steps each...\n\n",
              kWorld, kSteps);
  const RunResult dkfac = train(core::DistStrategy::kDKfac);
  const RunResult mpd = train(core::DistStrategy::kMpdKfac);
  const RunResult spd = train(core::DistStrategy::kSpdKfac);

  std::printf("strategy   final-loss   wall(s)   broadcast-CTs\n");
  std::printf("D-KFAC     %9.2e   %7.3f   %zu\n", dkfac.rank0_loss,
              dkfac.seconds, dkfac.comm_ops);
  std::printf("MPD-KFAC   %9.2e   %7.3f   %zu\n", mpd.rank0_loss, mpd.seconds,
              mpd.comm_ops);
  std::printf("SPD-KFAC   %9.2e   %7.3f   %zu\n", spd.rank0_loss, spd.seconds,
              spd.comm_ops);

  double max_diff = 0.0;
  for (std::size_t l = 0; l < dkfac.rank0_weights.size(); ++l) {
    max_diff = std::max(max_diff,
                        tensor::max_abs_diff(dkfac.rank0_weights[l],
                                             spd.rank0_weights[l]));
    max_diff = std::max(max_diff,
                        tensor::max_abs_diff(mpd.rank0_weights[l],
                                             spd.rank0_weights[l]));
  }
  std::printf(
      "\nMax |weight difference| across strategies after %d steps: %.3e\n"
      "(only floating-point reassociation of the all-reduce; the paper:\n"
      "\"SPD-KFAC should generate identical numerical results ... as\n"
      "D-KFAC\").\n",
      kSteps, max_diff);
  return max_diff < 1e-8 ? 0 : 1;
}
