// Placement planner: run Algorithm 1 (LBP) for a chosen model and cluster
// size and compare against Seq-Dist / Non-Dist under the Eq. (21) objective.
//
//   $ ./examples/placement_planner [model] [world]
//   $ ./examples/placement_planner resnet152 64
//
// Mirrors the paper's one-time planning step (Section V-B): take fitted
// computation/communication models, traverse the 2L Kronecker-factor
// dimensions, type each tensor CT/NCT, and assign CTs to the least-loaded
// GPU.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "sched/placement.hpp"
#include "models/model_spec.hpp"
#include "perf/models.hpp"

int main(int argc, char** argv) {
  using namespace spdkfac;

  const std::string model_name = argc > 1 ? argv[1] : "resnet50";
  const int world = argc > 2 ? std::atoi(argv[2]) : 64;
  const models::ModelSpec spec = models::model_by_name(model_name);
  const auto cal = perf::ClusterCalibration::paper_fabric(world);
  const auto dims = spec.factor_dims();

  std::printf("Planning inverse placement for %s (2L = %zu tensors) on %d "
              "GPUs\n\n",
              spec.name.c_str(), dims.size(), world);

  const sched::Placement lbp =
      sched::lbp_place(dims, world, cal.inverse, cal.bcast_fabric);
  const sched::Placement seq = sched::seq_place(dims, world);
  const sched::Placement nondist = sched::nondist_place(dims, world);

  std::printf("policy     #NCT  #CT   Eq.(21) predicted max (ms)\n");
  for (const auto* p : {&nondist, &seq, &lbp}) {
    const auto cost =
        sched::predict_cost(*p, dims, cal.inverse, cal.bcast_fabric);
    std::printf("%-9s  %4zu  %4zu  %8.1f\n", p->policy.c_str(), p->num_ncts(),
                p->num_cts(), cost.max_seconds * 1e3);
  }

  // CT dimension histogram: which tensors Algorithm 1 decided to distribute.
  std::map<std::size_t, int> ct_dims;
  for (const auto& a : lbp.assignments) {
    if (!a.nct) ++ct_dims[a.dim];
  }
  std::printf("\nCT tensors by dimension (inverted once, broadcast):\n");
  for (const auto& [d, n] : ct_dims) {
    std::printf("  d = %5zu  x%d   t_inv = %6.2f ms   t_bcast = %6.2f ms\n",
                d, n, cal.inverse.time(d) * 1e3,
                cal.bcast_fabric.time_dim(d) * 1e3);
  }
  const std::size_t crossover =
      perf::ct_nct_crossover_dim(cal.inverse, cal.bcast_fabric);
  std::printf(
      "\nCT/NCT crossover at d = %zu (Fig. 11): tensors below it are cheaper\n"
      "to invert on every GPU than to broadcast.\n",
      crossover);

  // Per-GPU loads of the first few GPUs.
  std::printf("\nPer-GPU CT worklists (first 8 GPUs):\n");
  for (int p = 0; p < std::min(world, 8); ++p) {
    std::printf("  gpu%-2d:", p);
    for (std::size_t t : lbp.per_gpu[p]) std::printf(" T%zu(d=%zu)", t, dims[t]);
    std::printf("\n");
  }
  return 0;
}
