// Cluster simulator CLI: one iteration of a chosen training algorithm on a
// simulated GPU cluster, with the paper's six-way time breakdown.
//
//   $ ./examples/simulate_cluster [model] [world] [algorithm] [trace.json]
//   $ ./examples/simulate_cluster densenet201 64 spd-kfac
//   $ ./examples/simulate_cluster resnet50 8 spd-kfac /tmp/trace.json
//
// Algorithms: sgd | kfac | d-kfac | mpd-kfac | spd-kfac.  When a fourth
// argument is given, the full schedule is exported as Chrome trace-event
// JSON (open in chrome://tracing or https://ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "models/model_spec.hpp"
#include "perf/models.hpp"
#include "sim/iteration.hpp"
#include "sim/trace.hpp"

using namespace spdkfac;

namespace {

sim::AlgorithmConfig config_by_name(std::string name) {
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  if (name == "sgd" || name == "s-sgd") return sim::AlgorithmConfig::sgd();
  if (name == "kfac") return sim::AlgorithmConfig::kfac();
  if (name == "d-kfac" || name == "dkfac") return sim::AlgorithmConfig::dkfac();
  if (name == "mpd-kfac" || name == "mpdkfac") {
    return sim::AlgorithmConfig::mpd_kfac();
  }
  if (name == "spd-kfac" || name == "spdkfac") {
    return sim::AlgorithmConfig::spd_kfac();
  }
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "resnet50";
  const int world = argc > 2 ? std::atoi(argv[2]) : 64;
  const std::string algo = argc > 3 ? argv[3] : "spd-kfac";

  const models::ModelSpec spec = models::model_by_name(model_name);
  const auto cal = perf::ClusterCalibration::paper_fabric(world);
  const auto cfg = config_by_name(algo);
  const auto res =
      simulate_iteration(spec, spec.default_batch, cal, cfg);

  std::printf("%s on %d simulated GPUs (%s, batch %zu/GPU)\n\n",
              cfg.name.c_str(), world, spec.name.c_str(), spec.default_batch);
  std::printf("iteration time : %.4f s\n", res.total);
  std::printf("  FF&BP        : %.4f s\n", res.breakdown.ff_bp);
  std::printf("  GradComm     : %.4f s\n", res.breakdown.grad_comm);
  std::printf("  FactorComp   : %.4f s\n", res.breakdown.factor_comp);
  std::printf("  FactorComm   : %.4f s (%.0f%% hidden)\n",
              res.breakdown.factor_comm,
              100.0 * res.factor_comm_hidden_fraction());
  std::printf("  InverseComp  : %.4f s\n", res.breakdown.inverse_comp);
  std::printf("  InverseComm  : %.4f s\n", res.breakdown.inverse_comm);
  if (!res.placement.assignments.empty()) {
    std::printf("placement      : %s (%zu NCT / %zu CT)\n",
                res.placement.policy.c_str(), res.placement.num_ncts(),
                res.placement.num_cts());
  }
  std::printf("throughput     : %.1f images/s (cluster)\n",
              world * static_cast<double>(spec.default_batch) / res.total);

  if (argc > 4) {
    const std::string trace_path = argv[4];
    sim::write_chrome_trace(trace_path, res.schedule, res.stream_names,
                            cfg.name + "/" + spec.name);
    std::printf("trace          : wrote %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}
