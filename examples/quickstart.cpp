// Quickstart: train a small MLP on synthetic data with the K-FAC optimizer
// (Eq. 12) and compare against plain SGD on the same stream.
//
//   $ ./examples/quickstart
//
// Demonstrates the core single-process API: build a model, run
// forward/backward (which captures the K-FAC statistics), call
// KfacOptimizer::step().
#include <cstdio>

#include "core/kfac_optimizer.hpp"
#include "nn/data.hpp"
#include "nn/layers.hpp"

int main() {
  using namespace spdkfac;

  constexpr std::size_t kFeatures = 16;
  constexpr std::size_t kClasses = 4;
  constexpr std::size_t kBatch = 32;
  constexpr int kSteps = 40;

  // Two identical models (same init seed) so the comparison is fair.
  tensor::Rng rng_kfac(7), rng_sgd(7);
  const std::size_t widths[] = {kFeatures, 32, kClasses};
  nn::Sequential kfac_model = nn::make_mlp(widths, rng_kfac);
  nn::Sequential sgd_model = nn::make_mlp(widths, rng_sgd);

  core::KfacOptions options;
  options.lr = 0.2;
  options.damping = 0.1;
  options.stat_decay = 0.9;
  core::KfacOptimizer kfac(kfac_model.preconditioned_layers(), options);
  core::SgdOptimizer sgd(sgd_model.preconditioned_layers(), /*lr=*/0.2);

  nn::SyntheticClassification data(kClasses, kFeatures, 1, /*seed=*/42,
                                   /*noise=*/0.3);
  nn::SoftmaxCrossEntropy loss;
  tensor::Rng stream_kfac(1), stream_sgd(1);

  std::printf("step   kfac_loss  kfac_acc   sgd_loss   sgd_acc\n");
  for (int step = 0; step < kSteps; ++step) {
    auto run = [&](nn::Sequential& model, tensor::Rng& stream, auto& optim,
                   double& out_loss, double& out_acc) {
      nn::Batch batch = data.sample(kBatch, stream);
      nn::Tensor4D flat(batch.inputs.n, kFeatures, 1, 1);
      flat.data = batch.inputs.data;
      out_loss = loss.forward(model.forward(flat), batch.labels);
      out_acc = loss.accuracy();
      model.backward(loss.backward());
      optim.step();
    };
    double kl, ka, sl, sa;
    run(kfac_model, stream_kfac, kfac, kl, ka);
    run(sgd_model, stream_sgd, sgd, sl, sa);
    if (step % 5 == 0 || step == kSteps - 1) {
      std::printf("%4d   %8.4f   %6.2f%%   %8.4f   %6.2f%%\n", step, kl,
                  100 * ka, sl, 100 * sa);
    }
  }
  std::printf(
      "\nK-FAC preconditions each layer's gradient with the damped inverses\n"
      "of its Kronecker factors A and G, typically reaching a given loss in\n"
      "fewer iterations than SGD (the paper's Section I motivation).\n");
  return 0;
}
